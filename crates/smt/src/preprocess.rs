//! SatELite-style CNF preprocessing.
//!
//! Bit-blasted bitvector formulas arrive at the SAT core with heavy Tseitin
//! scaffolding: thousands of auxiliary gate variables, long substitution
//! chains, and clauses that subsume one another. This module shrinks the
//! clause database once per query, before CDCL search, with the classic
//! NiVER/SatELite rule set:
//!
//! - **Unit propagation to fixpoint** at level 0 — forced literals are
//!   applied, satisfied clauses dropped, false literals stripped.
//! - **Pure-literal elimination** — a variable occurring in one polarity only
//!   is satisfied outright and its clauses removed.
//! - **Subsumption and self-subsuming resolution**, occurrence-list driven —
//!   a clause contained in another deletes the superset; a clause contained
//!   in another up to one flipped literal strengthens the superset by
//!   removing that literal.
//! - **Bounded variable elimination** — a variable is resolved away when the
//!   resolvent set is no larger than the clauses removed (clause-count rule),
//!   with occurrence and resolvent-length caps so elimination never blows up.
//!
//! Unit propagation, subsumption and strengthening are equivalence
//! preserving. Pure-literal elimination and variable elimination only
//! preserve *satisfiability*, so two guard rails apply: a **freeze set** of
//! variables exempt from both (the incremental sessions freeze every
//! variable reachable from their [`BlastState`](crate::bitblast::BlastState)
//! so later per-candidate clauses and assumption literals stay meaningful),
//! and a **reconstruction stack** replaying eliminations in reverse so a
//! satisfying assignment of the simplified formula extends to one of the
//! original ([`Preprocessed::complete_model`]).

use crate::sat::{Lit, SatSolver, Var};

/// Which simplification layers run. Off by default: the solver behaves
/// bit-identically to one without the subsystem, and engine fingerprints are
/// unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SimplifyConfig {
    /// Run [`preprocess`] on the clause database before each search.
    pub preprocess: bool,
    /// Enable the in-search hooks (LBD-driven learned-clause DB reduction
    /// and on-the-fly self-subsumption) via
    /// [`SatSolver::set_inprocessing`].
    pub inprocess: bool,
}

impl SimplifyConfig {
    /// Both layers on.
    pub fn full() -> SimplifyConfig {
        SimplifyConfig {
            preprocess: true,
            inprocess: true,
        }
    }

    /// `true` if any layer is enabled.
    pub fn any(self) -> bool {
        self.preprocess || self.inprocess
    }
}

/// Counters from one [`preprocess`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Variables removed by pure-literal elimination or variable elimination.
    pub vars_eliminated: u64,
    /// Clauses deleted because another clause subsumes them.
    pub clauses_subsumed: u64,
    /// Literals removed from clauses by self-subsuming resolution.
    pub clauses_strengthened: u64,
    /// Clauses in the input (after tautology/duplicate intake cleanup).
    pub clauses_in: u64,
    /// Clauses in the simplified output.
    pub clauses_out: u64,
}

/// Cumulative simplification statistics for a [`crate::solver::Solver`],
/// aggregating preprocessing and inprocessing effects across checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Variables eliminated by preprocessing (pure literals + resolution).
    pub vars_eliminated: u64,
    /// Clauses removed: subsumption plus inprocessing DB-reduction deletions.
    pub clauses_subsumed: u64,
    /// Literals removed: self-subsuming strengthenings (pre- and in-search).
    pub clauses_strengthened: u64,
    /// High-water mark of the flat clause arena, in bytes.
    pub arena_bytes: u64,
    /// Total microseconds spent inside [`preprocess`].
    pub preprocess_micros: u64,
}

impl SimplifyStats {
    /// Folds another counter set in: sums everything except `arena_bytes`,
    /// which is a high-water mark and takes the max.
    pub fn absorb(&mut self, other: &SimplifyStats) {
        self.vars_eliminated += other.vars_eliminated;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_strengthened += other.clauses_strengthened;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.preprocess_micros += other.preprocess_micros;
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SimplifyStats::default()
    }
}

/// One entry of the reconstruction stack. Steps are recorded in elimination
/// order and must be replayed in reverse to extend a model of the simplified
/// formula to the original variables.
#[derive(Debug, Clone)]
enum ReconstructStep {
    /// The literal was pure: setting it true satisfies every clause removed.
    Pure(Lit),
    /// The variable was resolved away; `saved` holds every original clause
    /// that mentioned it, for the standard witness recovery: default the
    /// variable false, flip to true iff some saved clause is otherwise
    /// unsatisfied (such a clause necessarily contains the positive literal).
    Eliminated { var: Var, saved: Vec<Vec<Lit>> },
}

/// The result of preprocessing: a simplified, equisatisfiable clause
/// database over the *same* variable numbering (no renumbering — frozen
/// variables and blast-state literals stay valid), plus everything needed
/// to rebuild models and solvers.
#[derive(Debug)]
pub struct Preprocessed {
    num_vars: usize,
    unsat: bool,
    units: Vec<Lit>,
    clauses: Vec<Vec<Lit>>,
    reconstruct: Vec<ReconstructStep>,
    /// Counters describing what the run removed.
    pub stats: PreprocessStats,
}

impl Preprocessed {
    /// Number of variables (identical to the input formula).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// `true` if preprocessing already refuted the formula.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// The simplified clauses (each of length ≥ 2), in deterministic order.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Literals fixed at the root (input units plus everything derived).
    pub fn units(&self) -> &[Lit] {
        &self.units
    }

    /// Builds a fresh solver holding the simplified formula, with the clause
    /// arena and watch lists pre-sized to their exact final occupancy.
    pub fn build_solver(&self) -> SatSolver {
        let mut sat = SatSolver::new();
        for _ in 0..self.num_vars {
            sat.new_var();
        }
        if self.unsat {
            sat.add_clause(&[]);
            return sat;
        }
        let total_lits: usize = self.clauses.iter().map(|c| c.len()).sum();
        sat.reserve_clauses(self.clauses.len(), total_lits);
        // Exact watch occupancy: every stored clause watches its first two
        // literals, and the units land on the trail, not in watch lists.
        let mut watch_counts = vec![0usize; 2 * self.num_vars];
        for c in &self.clauses {
            watch_counts[c[0].code()] += 1;
            watch_counts[c[1].code()] += 1;
        }
        for (code, &count) in watch_counts.iter().enumerate() {
            if count > 0 {
                let lit = Lit::new(code as Var >> 1, code & 1 == 1);
                sat.reserve_watch(lit, count);
            }
        }
        for &u in &self.units {
            sat.add_clause(&[u]);
        }
        for c in &self.clauses {
            sat.add_clause(c);
        }
        sat
    }

    /// Extends a satisfying assignment of the simplified formula (indexed by
    /// variable, `model.len() == num_vars`) to one of the original formula by
    /// applying the fixed units and replaying the reconstruction stack in
    /// reverse.
    pub fn complete_model(&self, model: &mut [bool]) {
        debug_assert_eq!(model.len(), self.num_vars);
        for &u in &self.units {
            model[u.var() as usize] = !u.is_neg();
        }
        for step in self.reconstruct.iter().rev() {
            match step {
                ReconstructStep::Pure(lit) => {
                    model[lit.var() as usize] = !lit.is_neg();
                }
                ReconstructStep::Eliminated { var, saved } => {
                    fn satisfied(model: &[bool], clause: &[Lit]) -> bool {
                        clause.iter().any(|l| model[l.var() as usize] ^ l.is_neg())
                    }
                    let v = *var as usize;
                    model[v] = false;
                    if saved.iter().any(|c| !satisfied(model, c)) {
                        model[v] = true;
                        debug_assert!(
                            saved.iter().all(|c| satisfied(model, c)),
                            "elimination witness must satisfy all saved clauses"
                        );
                    }
                }
            }
        }
    }
}

/// Subset-check budget: one unit per literal compared. Bounds the quadratic
/// tail of subsumption on pathological inputs.
const SUBSUME_BUDGET: u64 = 4_000_000;
/// A variable with more occurrences than this (per polarity) is never
/// considered for elimination.
const BVE_OCC_CAP: usize = 10;
/// Resolvents longer than this veto the elimination producing them.
const BVE_RESOLVENT_CAP: usize = 16;
/// Outer simplification rounds (each: propagate, subsume, pure, eliminate).
const MAX_ROUNDS: usize = 5;

struct PClause {
    lits: Vec<Lit>,
    deleted: bool,
    /// Bloom signature over variables (bit `var & 63`) for cheap
    /// not-a-subset rejection.
    sig: u64,
}

impl PClause {
    fn new(mut lits: Vec<Lit>) -> PClause {
        lits.sort_unstable();
        lits.dedup();
        let sig = signature(&lits);
        PClause {
            lits,
            deleted: false,
            sig,
        }
    }
}

fn signature(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.var() & 63))
}

/// `true` if `small` ⊆ `big`; both must be sorted.
fn sorted_subset(small: &[Lit], big: &[Lit]) -> bool {
    let mut it = big.iter();
    'outer: for &l in small {
        for &b in it.by_ref() {
            match b.cmp(&l) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

struct Preprocessor {
    num_vars: usize,
    clauses: Vec<PClause>,
    occ: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    frozen: Vec<bool>,
    /// Variables removed by pure-literal elimination or resolution.
    gone: Vec<bool>,
    units: Vec<Lit>,
    unit_head: usize,
    sub_queue: Vec<usize>,
    in_sub_queue: Vec<bool>,
    reconstruct: Vec<ReconstructStep>,
    budget: u64,
    unsat: bool,
    stats: PreprocessStats,
}

impl Preprocessor {
    fn new(num_vars: usize) -> Preprocessor {
        Preprocessor {
            num_vars,
            clauses: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            assign: vec![None; num_vars],
            frozen: vec![false; num_vars],
            gone: vec![false; num_vars],
            units: Vec::new(),
            unit_head: 0,
            sub_queue: Vec::new(),
            in_sub_queue: Vec::new(),
            reconstruct: Vec::new(),
            budget: SUBSUME_BUDGET,
            unsat: false,
            stats: PreprocessStats::default(),
        }
    }

    fn enqueue_unit(&mut self, lit: Lit) {
        let v = lit.var() as usize;
        match self.assign[v] {
            Some(value) if value != lit.is_neg() => {}
            Some(_) => self.unsat = true,
            None => {
                self.assign[v] = Some(!lit.is_neg());
                self.units.push(lit);
            }
        }
    }

    fn intake(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        // Tautology: both phases of some variable.
        if clause.windows(2).any(|w| w[0] == w[1].negate()) {
            return;
        }
        match clause.len() {
            0 => self.unsat = true,
            1 => self.enqueue_unit(clause[0]),
            _ => {
                let idx = self.clauses.len();
                for &l in &clause {
                    self.occ[l.code()].push(idx);
                }
                self.clauses.push(PClause::new(clause));
            }
        }
    }

    /// Live occurrence list of `lit`, compacting stale entries in place.
    fn live_occ(&mut self, lit: Lit) -> Vec<usize> {
        let mut list = std::mem::take(&mut self.occ[lit.code()]);
        list.retain(|&ci| {
            !self.clauses[ci].deleted && self.clauses[ci].lits.binary_search(&lit).is_ok()
        });
        self.occ[lit.code()] = list.clone();
        list
    }

    fn delete_clause(&mut self, ci: usize) {
        self.clauses[ci].deleted = true;
    }

    /// Removes `lit` from clause `ci` (which must contain it), handling the
    /// unit/empty outcomes.
    fn strengthen_clause(&mut self, ci: usize, lit: Lit) {
        let pos = self.clauses[ci]
            .lits
            .binary_search(&lit)
            .expect("strengthened literal present");
        self.clauses[ci].lits.remove(pos);
        self.clauses[ci].sig = signature(&self.clauses[ci].lits);
        match self.clauses[ci].lits.len() {
            0 => {
                self.unsat = true;
                self.delete_clause(ci);
            }
            1 => {
                let unit = self.clauses[ci].lits[0];
                self.enqueue_unit(unit);
                self.delete_clause(ci);
            }
            _ => self.queue_for_subsumption(ci),
        }
    }

    /// Applies pending units to fixpoint.
    fn propagate(&mut self) {
        while self.unit_head < self.units.len() {
            if self.unsat {
                return;
            }
            let lit = self.units[self.unit_head];
            self.unit_head += 1;
            for ci in self.live_occ(lit) {
                self.delete_clause(ci);
            }
            for ci in self.live_occ(lit.negate()) {
                self.strengthen_clause(ci, lit.negate());
            }
        }
    }

    fn queue_for_subsumption(&mut self, ci: usize) {
        if self.in_sub_queue.len() < self.clauses.len() {
            self.in_sub_queue.resize(self.clauses.len(), false);
        }
        if !self.in_sub_queue[ci] {
            self.in_sub_queue[ci] = true;
            self.sub_queue.push(ci);
        }
    }

    /// Backward subsumption and self-subsuming resolution, queue-driven.
    fn subsume(&mut self) -> bool {
        let mut changed = false;
        let mut head = 0;
        while head < self.sub_queue.len() {
            if self.unsat || self.budget == 0 {
                break;
            }
            let ci = self.sub_queue[head];
            head += 1;
            self.in_sub_queue[ci] = false;
            if self.clauses[ci].deleted {
                continue;
            }
            // Backward subsumption: scan the shortest occurrence list among
            // our literals for superset clauses.
            let c_len = self.clauses[ci].lits.len();
            let c_sig = self.clauses[ci].sig;
            let best = self.clauses[ci]
                .lits
                .iter()
                .copied()
                .min_by_key(|l| self.occ[l.code()].len())
                .expect("non-empty clause");
            for di in self.live_occ(best) {
                if di == ci || self.clauses[di].deleted {
                    continue;
                }
                if self.clauses[di].lits.len() < c_len || c_sig & !self.clauses[di].sig != 0 {
                    continue;
                }
                self.budget = self.budget.saturating_sub(c_len as u64);
                // Split-borrow via index juggling is noisier than a clone of
                // the (short) subsumer; clauses here are blast-sized.
                let c_lits = self.clauses[ci].lits.clone();
                if sorted_subset(&c_lits, &self.clauses[di].lits) {
                    self.delete_clause(di);
                    self.stats.clauses_subsumed += 1;
                    changed = true;
                }
            }
            // Self-subsuming resolution: for each literal l of C, a clause D
            // containing ¬l and the rest of C can drop ¬l.
            for k in 0..self.clauses[ci].lits.len() {
                if self.clauses[ci].deleted || self.budget == 0 {
                    break;
                }
                let l = self.clauses[ci].lits[k];
                for di in self.live_occ(l.negate()) {
                    if di == ci || self.clauses[di].deleted {
                        continue;
                    }
                    if self.clauses[di].lits.len() < c_len || c_sig & !self.clauses[di].sig != 0 {
                        continue;
                    }
                    self.budget = self.budget.saturating_sub(c_len as u64);
                    let mut flipped = self.clauses[ci].lits.clone();
                    flipped[k] = l.negate();
                    flipped.sort_unstable();
                    if sorted_subset(&flipped, &self.clauses[di].lits) {
                        self.strengthen_clause(di, l.negate());
                        self.stats.clauses_strengthened += 1;
                        changed = true;
                    }
                    if self.unsat {
                        return changed;
                    }
                }
            }
        }
        // Drain processed prefix.
        self.sub_queue.drain(..head.min(self.sub_queue.len()));
        changed
    }

    /// Pure-literal elimination over unfrozen variables.
    fn pure_literals(&mut self) -> bool {
        let mut changed = false;
        for v in 0..self.num_vars as Var {
            if self.unsat {
                return changed;
            }
            let vi = v as usize;
            if self.assign[vi].is_some() || self.frozen[vi] || self.gone[vi] {
                continue;
            }
            let pos = self.live_occ(Lit::pos(v)).len();
            let neg = self.live_occ(Lit::neg(v)).len();
            let pure = match (pos, neg) {
                (0, 0) => continue,
                (_, 0) => Lit::pos(v),
                (0, _) => Lit::neg(v),
                _ => continue,
            };
            for ci in self.live_occ(pure) {
                self.delete_clause(ci);
            }
            self.gone[vi] = true;
            self.reconstruct.push(ReconstructStep::Pure(pure));
            self.stats.vars_eliminated += 1;
            changed = true;
        }
        changed
    }

    /// Bounded variable elimination (clause-count rule with occurrence and
    /// resolvent-length caps).
    fn eliminate_vars(&mut self) -> bool {
        let mut changed = false;
        for v in 0..self.num_vars as Var {
            if self.unsat || self.budget == 0 {
                return changed;
            }
            let vi = v as usize;
            if self.assign[vi].is_some() || self.frozen[vi] || self.gone[vi] {
                continue;
            }
            let pos_occ = self.live_occ(Lit::pos(v));
            let neg_occ = self.live_occ(Lit::neg(v));
            if pos_occ.is_empty() || neg_occ.is_empty() {
                continue; // pure or absent; handled elsewhere
            }
            if pos_occ.len() > BVE_OCC_CAP || neg_occ.len() > BVE_OCC_CAP {
                continue;
            }
            let removed = pos_occ.len() + neg_occ.len();
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut abort = false;
            'pairs: for &pi in &pos_occ {
                for &ni in &neg_occ {
                    self.budget = self.budget.saturating_sub(
                        (self.clauses[pi].lits.len() + self.clauses[ni].lits.len()) as u64,
                    );
                    let mut res: Vec<Lit> = Vec::with_capacity(
                        self.clauses[pi].lits.len() + self.clauses[ni].lits.len() - 2,
                    );
                    res.extend(
                        self.clauses[pi]
                            .lits
                            .iter()
                            .copied()
                            .filter(|&l| l != Lit::pos(v)),
                    );
                    res.extend(
                        self.clauses[ni]
                            .lits
                            .iter()
                            .copied()
                            .filter(|&l| l != Lit::neg(v)),
                    );
                    res.sort_unstable();
                    res.dedup();
                    if res.windows(2).any(|w| w[0] == w[1].negate()) {
                        continue; // tautological resolvent
                    }
                    if res.len() > BVE_RESOLVENT_CAP {
                        abort = true;
                        break 'pairs;
                    }
                    resolvents.push(res);
                    if resolvents.len() > removed {
                        abort = true;
                        break 'pairs;
                    }
                }
            }
            if abort {
                continue;
            }
            // Commit: save the originals for reconstruction, delete them,
            // add the resolvents.
            let mut saved: Vec<Vec<Lit>> = Vec::with_capacity(removed);
            for &ci in pos_occ.iter().chain(neg_occ.iter()) {
                saved.push(self.clauses[ci].lits.clone());
                self.delete_clause(ci);
            }
            self.gone[vi] = true;
            self.reconstruct
                .push(ReconstructStep::Eliminated { var: v, saved });
            self.stats.vars_eliminated += 1;
            for res in resolvents {
                match res.len() {
                    0 => self.unsat = true,
                    1 => self.enqueue_unit(res[0]),
                    _ => {
                        let idx = self.clauses.len();
                        for &l in &res {
                            self.occ[l.code()].push(idx);
                        }
                        self.clauses.push(PClause::new(res));
                        self.queue_for_subsumption(idx);
                    }
                }
            }
            self.propagate();
            changed = true;
        }
        changed
    }

    fn run(mut self) -> Preprocessed {
        self.stats.clauses_in = self.clauses.len() as u64;
        self.propagate();
        for ci in 0..self.clauses.len() {
            if !self.clauses[ci].deleted {
                self.queue_for_subsumption(ci);
            }
        }
        for _ in 0..MAX_ROUNDS {
            if self.unsat || self.budget == 0 {
                break;
            }
            self.propagate();
            let mut changed = self.subsume();
            self.propagate();
            changed |= self.pure_literals();
            changed |= self.eliminate_vars();
            self.propagate();
            if !changed {
                break;
            }
        }
        let clauses: Vec<Vec<Lit>> = self
            .clauses
            .iter()
            .filter(|c| !c.deleted)
            .map(|c| c.lits.clone())
            .collect();
        self.stats.clauses_out = clauses.len() as u64;
        debug_assert!(
            clauses
                .iter()
                .flatten()
                .all(|l| !self.gone[l.var() as usize]),
            "eliminated variables must not occur in live clauses"
        );
        Preprocessed {
            num_vars: self.num_vars,
            unsat: self.unsat,
            units: if self.unsat { Vec::new() } else { self.units },
            clauses: if self.unsat { Vec::new() } else { clauses },
            reconstruct: self.reconstruct,
            stats: self.stats,
        }
    }
}

/// Preprocesses a CNF given as explicit clause slices plus already-known
/// root units. `frozen` variables are exempt from pure-literal elimination
/// and variable elimination (they may appear in clauses or assumptions added
/// later), but still participate in the equivalence-preserving rules.
pub fn preprocess<'a, I>(
    num_vars: usize,
    clauses: I,
    root_units: &[Lit],
    frozen: &[Var],
) -> Preprocessed
where
    I: IntoIterator<Item = &'a [Lit]>,
{
    let mut p = Preprocessor::new(num_vars);
    for &v in frozen {
        p.frozen[v as usize] = true;
    }
    for &u in root_units {
        p.enqueue_unit(u);
    }
    for c in clauses {
        p.intake(c);
    }
    p.run()
}

/// Preprocesses the clause database of an existing solver (typically fresh
/// from bit-blasting, at decision level 0): its stored clauses plus its
/// root-implied trail.
pub fn preprocess_solver(sat: &SatSolver, frozen: &[Var]) -> Preprocessed {
    if sat.is_unsat() {
        let mut p = Preprocessor::new(sat.num_vars());
        p.unsat = true;
        return p.run();
    }
    preprocess(sat.num_vars(), sat.clauses(), sat.root_units(), frozen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatBudget, SatResult};

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos((v - 1) as Var)
        } else {
            Lit::neg((-v - 1) as Var)
        }
    }

    fn solve_raw(num_vars: usize, clauses: &[Vec<Lit>]) -> (SatResult, SatSolver) {
        let mut s = SatSolver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c);
        }
        let r = s.solve(&SatBudget::default());
        (r, s)
    }

    fn solve_preprocessed(pre: &Preprocessed) -> (SatResult, Vec<bool>) {
        let mut s = pre.build_solver();
        let r = s.solve(&SatBudget::default());
        let mut model: Vec<bool> = (0..pre.num_vars())
            .map(|v| s.model_value(v as Var))
            .collect();
        if r == SatResult::Sat {
            pre.complete_model(&mut model);
        }
        (r, model)
    }

    #[test]
    fn unit_propagation_reaches_fixpoint() {
        // 1, (¬1 ∨ 2), (¬2 ∨ 3) all collapse to units.
        let clauses = [vec![lit(1)], vec![lit(-1), lit(2)], vec![lit(-2), lit(3)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(3, refs, &[], &[]);
        assert!(!pre.is_unsat());
        assert!(pre.clauses().is_empty());
        assert_eq!(pre.units().len(), 3);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = [vec![lit(1)], vec![lit(-1)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(1, refs, &[], &[]);
        assert!(pre.is_unsat());
    }

    #[test]
    fn subsumption_deletes_supersets() {
        let clauses = [vec![lit(1), lit(2)], vec![lit(1), lit(2), lit(3)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(3, refs, &[], &[0, 1, 2]);
        assert_eq!(pre.stats.clauses_subsumed, 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (1 ∨ 2) and (¬1 ∨ 2 ∨ 3): resolving on 1 gives (2 ∨ 3)... the
        // classic case is (1 ∨ 2) strengthening (¬1 ∨ 2) to (2). Use
        // frozen vars so elimination doesn't get there first.
        let clauses = [vec![lit(1), lit(2)], vec![lit(-1), lit(2), lit(3)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(3, refs, &[], &[0, 1, 2]);
        assert_eq!(pre.stats.clauses_strengthened, 1);
        assert!(pre.clauses().iter().any(|c| c == &vec![lit(2), lit(3)]));
    }

    #[test]
    fn pure_literal_elimination_records_reconstruction() {
        // Variable 1 occurs only positively (2 and 3 are frozen so no other
        // rule touches the instance first).
        let clauses = [vec![lit(1), lit(2)], vec![lit(1), lit(-3)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(3, refs, &[], &[1, 2]);
        assert!(pre.stats.vars_eliminated >= 1);
        let (r, model) = solve_preprocessed(&pre);
        assert_eq!(r, SatResult::Sat);
        assert!(model[0], "pure literal must be set true by reconstruction");
    }

    #[test]
    fn variable_elimination_preserves_models() {
        // v0 is a Tseitin-style definition: (¬1 ∨ 2), (¬1 ∨ 3), (1 ∨ ¬2 ∨ ¬3)
        // — eliminating 1 yields (2 ∨ ¬2 ∨ ¬3)… i.e. mostly tautologies.
        let clauses = vec![
            vec![lit(-1), lit(2)],
            vec![lit(-1), lit(3)],
            vec![lit(1), lit(-2), lit(-3)],
            vec![lit(2), lit(3)],
        ];
        let (want, _) = solve_raw(3, &clauses);
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(3, refs, &[], &[]);
        let (got, model) = solve_preprocessed(&pre);
        assert_eq!(got, want);
        assert_eq!(got, SatResult::Sat);
        let eval = |l: Lit| model[l.var() as usize] ^ l.is_neg();
        for c in &clauses {
            assert!(c.iter().any(|&l| eval(l)));
        }
    }

    /// Deterministic LCG for the property tests.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        }
    }

    fn random_cnf(seed: u64, num_vars: u64, num_clauses: usize, width: usize) -> Vec<Vec<Lit>> {
        let mut next = rng(seed);
        (0..num_clauses)
            .map(|_| {
                (0..width)
                    .map(|_| Lit::new((next() % num_vars) as Var, next() % 2 == 1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn property_preprocessed_and_raw_formulas_agree() {
        // Satellite (a) + (b): verdict agreement on random CNFs across the
        // SAT/UNSAT phase transition, and reconstructed models satisfy the
        // ORIGINAL clauses.
        for seed in 0..60u64 {
            let num_vars = 8 + (seed % 5) as usize;
            let num_clauses = 3 * num_vars + (seed % 17) as usize;
            let width = 2 + (seed % 3) as usize;
            let clauses = random_cnf(seed, num_vars as u64, num_clauses, width);
            let (want, _) = solve_raw(num_vars, &clauses);
            let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
            let pre = preprocess(num_vars, refs, &[], &[]);
            let (got, model) = solve_preprocessed(&pre);
            assert_eq!(got, want, "seed {}", seed);
            if got == SatResult::Sat {
                let eval = |l: Lit| model[l.var() as usize] ^ l.is_neg();
                for (i, c) in clauses.iter().enumerate() {
                    assert!(
                        c.iter().any(|&l| eval(l)),
                        "seed {} clause {} unsatisfied by reconstructed model",
                        seed,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn property_frozen_variables_survive_elimination() {
        // Satellite (c): frozen vars are never eliminated, so solving the
        // simplified formula under an assumption on a frozen var agrees with
        // the raw formula under the same assumption.
        for seed in 0..40u64 {
            let num_vars = 9usize;
            let clauses = random_cnf(seed.wrapping_add(1000), num_vars as u64, 24, 3);
            let mut next = rng(seed);
            let frozen: Vec<Var> = (0..3).map(|_| (next() % num_vars as u64) as Var).collect();
            let assumption = Lit::new(frozen[0], next() % 2 == 1);

            let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
            let pre = preprocess(num_vars, refs, &[], &frozen);
            // No reconstruction step may name a frozen variable.
            for step in &pre.reconstruct {
                let v = match step {
                    ReconstructStep::Pure(l) => l.var(),
                    ReconstructStep::Eliminated { var, .. } => *var,
                };
                assert!(!frozen.contains(&v), "seed {}: frozen var eliminated", seed);
            }

            let mut raw = SatSolver::new();
            for _ in 0..num_vars {
                raw.new_var();
            }
            for c in &clauses {
                raw.add_clause(c);
            }
            let want = raw.solve_with_assumptions(&SatBudget::default(), &[assumption]);

            let mut simp = pre.build_solver();
            let got = simp.solve_with_assumptions(&SatBudget::default(), &[assumption]);
            // A frozen var fixed at the root by equivalence-preserving rules
            // can make the assumption immediately false — both sides must
            // still agree because UP only derives implied literals.
            assert_eq!(got, want, "seed {}", seed);
        }
    }

    #[test]
    fn preprocess_solver_lifts_the_clause_database() {
        let mut sat = SatSolver::new();
        for _ in 0..4 {
            sat.new_var();
        }
        sat.add_clause(&[lit(1)]);
        sat.add_clause(&[lit(-1), lit(2), lit(3)]);
        sat.add_clause(&[lit(2), lit(3), lit(4)]);
        let pre = preprocess_solver(&sat, &[]);
        assert!(!pre.is_unsat());
        // The root unit carries over; (2∨3) subsumes (2∨3∨4).
        assert!(pre.units().contains(&lit(1)));
        let (r, _) = solve_preprocessed(&pre);
        assert_eq!(r, SatResult::Sat);
    }

    #[test]
    fn shrinkage_on_tseitin_like_chains() {
        // A substitution chain: x0 ↔ x1 ↔ … ↔ xN with a forced head. The
        // equivalence-preserving rules alone collapse everything to units.
        let n = 30;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..n {
            let a = Lit::pos(i as Var);
            let b = Lit::pos((i + 1) as Var);
            clauses.push(vec![a.negate(), b]);
            clauses.push(vec![a, b.negate()]);
        }
        clauses.push(vec![Lit::pos(0)]);
        let refs: Vec<&[Lit]> = clauses.iter().map(|c| c.as_slice()).collect();
        let pre = preprocess(n + 1, refs, &[], &[]);
        assert!(pre.clauses().is_empty(), "chain should fully collapse");
        assert_eq!(pre.units().len(), n + 1);
        let (r, model) = solve_preprocessed(&pre);
        assert_eq!(r, SatResult::Sat);
        assert!(model.iter().all(|&b| b));
    }
}
