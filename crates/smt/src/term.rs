//! Hash-consed terms for the QF_BV fragment used by the translation
//! validator.
//!
//! A [`Context`] interns terms so that structurally equal terms share an id,
//! and applies light rewriting (constant folding, neutral elements, trivial
//! if-then-else) at construction time — the same role Z3's simplifier plays
//! before bit-blasting.

use std::collections::HashMap;
use std::fmt;

/// The sort of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Propositional.
    Bool,
    /// Fixed-width bitvector.
    BitVec(u32),
}

impl Sort {
    /// The width of a bitvector sort.
    ///
    /// # Panics
    ///
    /// Panics when called on `Bool`. Code paths that can receive terms built
    /// from *parsed user input* must use [`Sort::try_width`] and surface a
    /// typed error instead.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("Bool has no bit width"),
        }
    }

    /// The width of a bitvector sort, or `None` for `Bool` — the
    /// non-panicking form for code reachable from parsed input.
    pub fn try_width(self) -> Option<u32> {
        match self {
            Sort::BitVec(w) => Some(w),
            Sort::Bool => None,
        }
    }

    /// Returns `true` for the propositional sort.
    pub fn is_bool(self) -> bool {
        matches!(self, Sort::Bool)
    }
}

/// A term identifier. Terms live in a [`Context`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// The operator of a term node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Boolean constant.
    BoolConst(bool),
    /// Bitvector constant (value stored in the low `width` bits).
    BvConst {
        /// The value, masked to `width` bits.
        value: u64,
        /// The width in bits.
        width: u32,
    },
    /// A free variable.
    Var {
        /// The variable name.
        name: String,
        /// Its sort.
        sort: Sort,
    },
    /// Boolean negation.
    Not,
    /// Boolean conjunction (binary).
    And,
    /// Boolean disjunction (binary).
    Or,
    /// Boolean exclusive or.
    Xor,
    /// Boolean implication.
    Implies,
    /// If-then-else; the branches may be Bool or BitVec.
    Ite,
    /// Equality over any sort.
    Eq,
    /// Bitvector addition (wrapping).
    BvAdd,
    /// Bitvector subtraction (wrapping).
    BvSub,
    /// Bitvector multiplication (low bits).
    BvMul,
    /// Two's-complement negation.
    BvNeg,
    /// Bitwise and.
    BvAnd,
    /// Bitwise or.
    BvOr,
    /// Bitwise xor.
    BvXor,
    /// Bitwise complement.
    BvNot,
    /// Logical shift left (shift amount is the second operand).
    BvShl,
    /// Logical shift right.
    BvLshr,
    /// Arithmetic shift right.
    BvAshr,
    /// Unsigned division (by-zero yields all-ones, as in SMT-LIB).
    BvUdiv,
    /// Unsigned remainder (by-zero yields the dividend).
    BvUrem,
    /// Signed division (C semantics via sign handling around BvUdiv).
    BvSdiv,
    /// Signed remainder.
    BvSrem,
    /// Unsigned less-than.
    BvUlt,
    /// Signed less-than.
    BvSlt,
    /// Signed less-or-equal.
    BvSle,
}

/// A term node: operator plus argument ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermData {
    /// The operator.
    pub op: Op,
    /// Arguments, in order.
    pub args: Vec<TermId>,
    /// The sort of the term.
    pub sort: Sort,
}

/// The term arena and interner.
///
/// The interner is a bucketed hash table keyed by a stable FNV-1a hash of
/// the `(op, args)` pair; candidates in a bucket are verified by structural
/// comparison against the arena. Because the lookup never builds an owned
/// key, *interning an already-known term allocates nothing* — the hot path
/// of symbolic execution, which rebuilds mostly-shared terms per iteration.
#[derive(Debug, Default)]
pub struct Context {
    terms: Vec<TermData>,
    table: HashMap<u64, Vec<TermId>>,
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv_bytes(hash, &value.to_le_bytes())
}

fn sort_code(sort: Sort) -> u64 {
    match sort {
        Sort::Bool => u64::MAX,
        Sort::BitVec(w) => u64::from(w),
    }
}

/// Interner hash of a variable, computable from a borrowed name (so a
/// variable lookup does not have to build an `Op::Var` first).
fn hash_var_key(name: &str, sort: Sort) -> u64 {
    let mut hash = fnv_bytes(FNV_OFFSET, &[3]);
    hash = fnv_u64(hash, name.len() as u64);
    hash = fnv_bytes(hash, name.as_bytes());
    fnv_u64(hash, sort_code(sort))
}

/// Interner hash of a non-variable `(op, args)` key.
fn hash_key(op: &Op, args: &[TermId]) -> u64 {
    let mut hash = match op {
        Op::BoolConst(b) => fnv_bytes(FNV_OFFSET, &[1, u8::from(*b)]),
        Op::BvConst { value, width } => {
            let h = fnv_bytes(FNV_OFFSET, &[2]);
            fnv_u64(fnv_u64(h, *value), u64::from(*width))
        }
        Op::Var { name, sort } => return hash_var_key(name, *sort),
        Op::Not => fnv_bytes(FNV_OFFSET, &[4]),
        Op::And => fnv_bytes(FNV_OFFSET, &[5]),
        Op::Or => fnv_bytes(FNV_OFFSET, &[6]),
        Op::Xor => fnv_bytes(FNV_OFFSET, &[7]),
        Op::Implies => fnv_bytes(FNV_OFFSET, &[8]),
        Op::Ite => fnv_bytes(FNV_OFFSET, &[9]),
        Op::Eq => fnv_bytes(FNV_OFFSET, &[10]),
        Op::BvAdd => fnv_bytes(FNV_OFFSET, &[11]),
        Op::BvSub => fnv_bytes(FNV_OFFSET, &[12]),
        Op::BvMul => fnv_bytes(FNV_OFFSET, &[13]),
        Op::BvNeg => fnv_bytes(FNV_OFFSET, &[14]),
        Op::BvAnd => fnv_bytes(FNV_OFFSET, &[15]),
        Op::BvOr => fnv_bytes(FNV_OFFSET, &[16]),
        Op::BvXor => fnv_bytes(FNV_OFFSET, &[17]),
        Op::BvNot => fnv_bytes(FNV_OFFSET, &[18]),
        Op::BvShl => fnv_bytes(FNV_OFFSET, &[19]),
        Op::BvLshr => fnv_bytes(FNV_OFFSET, &[20]),
        Op::BvAshr => fnv_bytes(FNV_OFFSET, &[21]),
        Op::BvUdiv => fnv_bytes(FNV_OFFSET, &[22]),
        Op::BvUrem => fnv_bytes(FNV_OFFSET, &[23]),
        Op::BvSdiv => fnv_bytes(FNV_OFFSET, &[24]),
        Op::BvSrem => fnv_bytes(FNV_OFFSET, &[25]),
        Op::BvUlt => fnv_bytes(FNV_OFFSET, &[26]),
        Op::BvSlt => fnv_bytes(FNV_OFFSET, &[27]),
        Op::BvSle => fnv_bytes(FNV_OFFSET, &[28]),
    };
    for arg in args {
        hash = fnv_u64(hash, u64::from(arg.0));
    }
    hash
}

/// The operator discriminant byte shared by the interner hash and the
/// structural hash (variables and constants add payload bytes after it).
fn op_code(op: &Op) -> u8 {
    match op {
        Op::BoolConst(_) => 1,
        Op::BvConst { .. } => 2,
        Op::Var { .. } => 3,
        Op::Not => 4,
        Op::And => 5,
        Op::Or => 6,
        Op::Xor => 7,
        Op::Implies => 8,
        Op::Ite => 9,
        Op::Eq => 10,
        Op::BvAdd => 11,
        Op::BvSub => 12,
        Op::BvMul => 13,
        Op::BvNeg => 14,
        Op::BvAnd => 15,
        Op::BvOr => 16,
        Op::BvXor => 17,
        Op::BvNot => 18,
        Op::BvShl => 19,
        Op::BvLshr => 20,
        Op::BvAshr => 21,
        Op::BvUdiv => 22,
        Op::BvUrem => 23,
        Op::BvSdiv => 24,
        Op::BvSrem => 25,
        Op::BvUlt => 26,
        Op::BvSlt => 27,
        Op::BvSle => 28,
    }
}

/// Structural hash of a term DAG, insensitive to variable *names* but
/// sensitive to everything that affects bit-blasting: operators, constants,
/// widths, argument order, and sharing.
///
/// Variables hash as their sort plus their position in the canonical
/// first-occurrence numbering induced by a pre-order left-to-right walk
/// (the same numbering `lv_cir::structural_hash` uses for value slots), so
/// `x + y` and `p + q` collide while `x + y` and `x + x` do not: a revisited
/// node — variable or shared subterm — emits a back-reference to its visit
/// index instead of being re-walked. The walk is linear in the DAG size.
///
/// This is the memo key for [`crate::bitblast::BlastCache`]: two roots with
/// equal structural hashes blast to literally the same clause stream modulo
/// a uniform renaming of SAT variables.
pub fn structural_hash(ctx: &Context, root: TermId) -> u64 {
    structural_hash_seeded(ctx, root, FNV_OFFSET)
}

/// [`structural_hash`] from an arbitrary seed. The blast cache uses a second
/// seed as a collision check, and callers hashing several roots into one key
/// chain them through the seed.
pub(crate) fn structural_hash_seeded(ctx: &Context, root: TermId, seed: u64) -> u64 {
    structural_hash_pair(ctx, root, seed, seed).0
}

/// Two independently seeded [`structural_hash`]es from a single DAG walk —
/// each accumulator is fed the identical byte stream, so the results equal
/// two separate [`structural_hash_seeded`] calls at half the walk cost. The
/// blast cache hashes every assertion root on the hot path, so the walk is
/// what the memo's lookup overhead amounts to.
pub(crate) fn structural_hash_pair(
    ctx: &Context,
    root: TermId,
    seed_a: u64,
    seed_b: u64,
) -> (u64, u64) {
    let mut a = seed_a;
    let mut b = seed_b;
    let feed_bytes = |a: &mut u64, b: &mut u64, bytes: &[u8]| {
        *a = fnv_bytes(*a, bytes);
        *b = fnv_bytes(*b, bytes);
    };
    let feed_u64 = |a: &mut u64, b: &mut u64, value: u64| {
        *a = fnv_u64(*a, value);
        *b = fnv_u64(*b, value);
    };
    let mut visited: HashMap<TermId, u32> = HashMap::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if let Some(&index) = visited.get(&id) {
            feed_bytes(&mut a, &mut b, &[0xff]);
            feed_u64(&mut a, &mut b, u64::from(index));
            continue;
        }
        visited.insert(id, visited.len() as u32);
        let term = ctx.term(id);
        feed_bytes(&mut a, &mut b, &[op_code(&term.op)]);
        match &term.op {
            Op::BoolConst(flag) => feed_bytes(&mut a, &mut b, &[u8::from(*flag)]),
            Op::BvConst { value, width } => {
                feed_u64(&mut a, &mut b, *value);
                feed_u64(&mut a, &mut b, u64::from(*width));
            }
            // No name bytes: alpha-insensitivity is the point. The sort
            // carries the width, and the back-reference mechanism gives
            // each variable its first-occurrence index.
            Op::Var { sort, .. } => feed_u64(&mut a, &mut b, sort_code(*sort)),
            _ => {}
        }
        feed_u64(&mut a, &mut b, sort_code(term.sort));
        feed_u64(&mut a, &mut b, term.args.len() as u64);
        for &arg in term.args.iter().rev() {
            stack.push(arg);
        }
    }
    (a, b)
}

/// The distinct variables reachable from `root`, in the canonical
/// first-occurrence order of the [`structural_hash`] walk — the order in
/// which a bit-blast of `root` into a fresh solver first materializes each
/// variable's literals. Blast-cache replay binds a hit's recorded input
/// slots to the new root's variables positionally via this list.
pub(crate) fn vars_in_order(ctx: &Context, root: TermId) -> Vec<TermId> {
    let mut vars = Vec::new();
    let mut visited: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let term = ctx.term(id);
        if matches!(term.op, Op::Var { .. }) {
            vars.push(id);
        }
        for &arg in term.args.iter().rev() {
            stack.push(arg);
        }
    }
    vars
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Context {
        Context::default()
    }

    /// The number of distinct terms created so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Removes every term while keeping the arena and interner allocations,
    /// so a recycled context rebuilds terms without fresh heap churn.
    pub fn clear(&mut self) {
        self.terms.clear();
        self.table.clear();
    }

    /// Returns `true` if no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The data of a term.
    pub fn term(&self, id: TermId) -> &TermData {
        &self.terms[id.0 as usize]
    }

    /// The sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.0 as usize].sort
    }

    /// Interns a non-variable term. Hits compare against the arena in place
    /// and allocate nothing; only a miss copies `args` into the arena.
    fn intern(&mut self, op: Op, args: &[TermId], sort: Sort) -> TermId {
        debug_assert!(
            !matches!(op, Op::Var { .. }),
            "variables are interned through intern_var"
        );
        let hash = hash_key(&op, args);
        if let Some(bucket) = self.table.get(&hash) {
            for &id in bucket {
                let term = &self.terms[id.0 as usize];
                if term.op == op && term.args == args {
                    return id;
                }
            }
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(TermData {
            op,
            args: args.to_vec(),
            sort,
        });
        self.table.entry(hash).or_default().push(id);
        id
    }

    /// Interns a variable from a borrowed name; the name is only copied to
    /// the heap when the variable does not exist yet.
    fn intern_var(&mut self, name: &str, sort: Sort) -> TermId {
        let hash = hash_var_key(name, sort);
        if let Some(bucket) = self.table.get(&hash) {
            for &id in bucket {
                if let Op::Var { name: n, sort: s } = &self.terms[id.0 as usize].op {
                    if *s == sort && n == name {
                        return id;
                    }
                }
            }
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(TermData {
            op: Op::Var {
                name: name.to_string(),
                sort,
            },
            args: Vec::new(),
            sort,
        });
        self.table.entry(hash).or_default().push(id);
        id
    }

    /// Returns the constant value if the term is a bitvector constant.
    pub fn as_bv_const(&self, id: TermId) -> Option<u64> {
        match &self.term(id).op {
            Op::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Returns the boolean value if the term is a boolean constant.
    pub fn as_bool_const(&self, id: TermId) -> Option<bool> {
        match &self.term(id).op {
            Op::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    // ---- leaves -------------------------------------------------------------

    /// The boolean constant `true` / `false`.
    pub fn bool_const(&mut self, value: bool) -> TermId {
        self.intern(Op::BoolConst(value), &[], Sort::Bool)
    }

    /// A bitvector constant of the given width.
    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        let masked = mask(value, width);
        self.intern(
            Op::BvConst {
                value: masked,
                width,
            },
            &[],
            Sort::BitVec(width),
        )
    }

    /// A 32-bit constant from an `i32` (the common case for mini-C values).
    pub fn bv32(&mut self, value: i32) -> TermId {
        self.bv_const(value as u32 as u64, 32)
    }

    /// A free bitvector variable. Looking up an existing variable does not
    /// copy the name.
    pub fn bv_var(&mut self, name: impl AsRef<str>, width: u32) -> TermId {
        self.intern_var(name.as_ref(), Sort::BitVec(width))
    }

    /// A free boolean variable. Looking up an existing variable does not
    /// copy the name.
    pub fn bool_var(&mut self, name: impl AsRef<str>) -> TermId {
        self.intern_var(name.as_ref(), Sort::Bool)
    }

    // ---- boolean connectives ------------------------------------------------

    /// Boolean negation with double-negation and constant folding.
    pub fn not(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_bool_const(a) {
            return self.bool_const(!v);
        }
        if self.term(a).op == Op::Not {
            return self.term(a).args[0];
        }
        self.intern(Op::Not, &[a], Sort::Bool)
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            (Some(false), _) | (_, Some(false)) => return self.bool_const(false),
            _ => {}
        }
        if a == b {
            return a;
        }
        self.intern(Op::And, &[a, b], Sort::Bool)
    }

    /// Conjunction of many terms.
    pub fn and_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_const(true);
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) | (_, Some(true)) => return self.bool_const(true),
            _ => {}
        }
        if a == b {
            return a;
        }
        self.intern(Op::Or, &[a, b], Sort::Bool)
    }

    /// Boolean exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(x), Some(y)) => return self.bool_const(x ^ y),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.bool_const(false);
        }
        self.intern(Op::Xor, &[a, b], Sort::Bool)
    }

    /// Boolean implication.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// If-then-else over booleans or bitvectors.
    pub fn ite(&mut self, cond: TermId, then_t: TermId, else_t: TermId) -> TermId {
        debug_assert_eq!(self.sort(then_t), self.sort(else_t));
        if let Some(c) = self.as_bool_const(cond) {
            return if c { then_t } else { else_t };
        }
        if then_t == else_t {
            return then_t;
        }
        let sort = self.sort(then_t);
        self.intern(Op::Ite, &[cond, then_t, else_t], sort)
    }

    /// Equality over any sort, with constant folding.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(x == y);
        }
        if let (Some(x), Some(y)) = (self.as_bool_const(a), self.as_bool_const(b)) {
            return self.bool_const(x == y);
        }
        self.intern(Op::Eq, &[a, b], Sort::Bool)
    }

    /// Disequality.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    // ---- bitvector operations -------------------------------------------------

    fn bv_binop(
        &mut self,
        op: Op,
        a: TermId,
        b: TermId,
        fold: impl Fn(u64, u64, u32) -> u64,
    ) -> TermId {
        let width = self.sort(a).width();
        debug_assert_eq!(width, self.sort(b).width());
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            let v = fold(x, y, width);
            return self.bv_const(v, width);
        }
        self.intern(op, &[a, b], Sort::BitVec(width))
    }

    /// Wrapping addition.
    pub fn bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        if self.as_bv_const(a) == Some(0) {
            return b;
        }
        if self.as_bv_const(b) == Some(0) {
            return a;
        }
        self.bv_binop(Op::BvAdd, a, b, |x, y, w| mask(x.wrapping_add(y), w))
    }

    /// Wrapping subtraction.
    pub fn bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        if self.as_bv_const(b) == Some(0) {
            return a;
        }
        if a == b {
            let width = self.sort(a).width();
            return self.bv_const(0, width);
        }
        self.bv_binop(Op::BvSub, a, b, |x, y, w| mask(x.wrapping_sub(y), w))
    }

    /// Low-bits multiplication.
    pub fn bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.sort(a).width();
        if self.as_bv_const(a) == Some(0) || self.as_bv_const(b) == Some(0) {
            return self.bv_const(0, width);
        }
        if self.as_bv_const(a) == Some(1) {
            return b;
        }
        if self.as_bv_const(b) == Some(1) {
            return a;
        }
        self.bv_binop(Op::BvMul, a, b, |x, y, w| mask(x.wrapping_mul(y), w))
    }

    /// Two's-complement negation.
    pub fn bv_neg(&mut self, a: TermId) -> TermId {
        let width = self.sort(a).width();
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(mask(x.wrapping_neg(), width), width);
        }
        self.intern(Op::BvNeg, &[a], Sort::BitVec(width))
    }

    /// Bitwise and.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvAnd, a, b, |x, y, w| mask(x & y, w))
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvOr, a, b, |x, y, w| mask(x | y, w))
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvXor, a, b, |x, y, w| mask(x ^ y, w))
    }

    /// Bitwise complement.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        let width = self.sort(a).width();
        if let Some(x) = self.as_bv_const(a) {
            return self.bv_const(mask(!x, width), width);
        }
        self.intern(Op::BvNot, &[a], Sort::BitVec(width))
    }

    /// Logical shift left.
    pub fn bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvShl, a, b, |x, y, w| {
            if y >= w as u64 {
                0
            } else {
                mask(x << y, w)
            }
        })
    }

    /// Logical shift right.
    pub fn bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvLshr, a, b, |x, y, w| {
            if y >= w as u64 {
                0
            } else {
                mask(x >> y, w)
            }
        })
    }

    /// Arithmetic shift right.
    pub fn bv_ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvAshr, a, b, |x, y, w| {
            let sx = sign_extend(x, w);
            let shift = (y.min(w as u64 - 1)) as u32;
            mask((sx >> shift) as u64, w)
        })
    }

    /// Unsigned division (division by zero yields all-ones, SMT-LIB style).
    pub fn bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvUdiv, a, b, |x, y, w| match x.checked_div(y) {
            None => mask(u64::MAX, w),
            Some(q) => mask(q, w),
        })
    }

    /// Unsigned remainder (remainder by zero yields the dividend).
    pub fn bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvUrem, a, b, |x, y, w| match x.checked_rem(y) {
            None => mask(x, w),
            Some(r) => mask(r, w),
        })
    }

    /// Signed division with C truncation semantics.
    pub fn bv_sdiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvSdiv, a, b, |x, y, w| {
            let sx = sign_extend(x, w);
            let sy = sign_extend(y, w);
            if sy == 0 {
                mask(u64::MAX, w)
            } else {
                mask(sx.wrapping_div(sy) as u64, w)
            }
        })
    }

    /// Signed remainder with C truncation semantics.
    pub fn bv_srem(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_binop(Op::BvSrem, a, b, |x, y, w| {
            let sx = sign_extend(x, w);
            let sy = sign_extend(y, w);
            if sy == 0 {
                mask(sx as u64, w)
            } else {
                mask(sx.wrapping_rem(sy) as u64, w)
            }
        })
    }

    // ---- comparisons ------------------------------------------------------------

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(x < y);
        }
        self.intern(Op::BvUlt, &[a, b], Sort::Bool)
    }

    /// Signed less-than.
    pub fn bv_slt(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.sort(a).width();
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(sign_extend(x, width) < sign_extend(y, width));
        }
        if a == b {
            return self.bool_const(false);
        }
        self.intern(Op::BvSlt, &[a, b], Sort::Bool)
    }

    /// Signed less-or-equal.
    pub fn bv_sle(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.sort(a).width();
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(sign_extend(x, width) <= sign_extend(y, width));
        }
        if a == b {
            return self.bool_const(true);
        }
        self.intern(Op::BvSle, &[a, b], Sort::Bool)
    }

    /// Signed greater-than, expressed via [`Context::bv_slt`].
    pub fn bv_sgt(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_slt(b, a)
    }

    /// Signed greater-or-equal, expressed via [`Context::bv_sle`].
    pub fn bv_sge(&mut self, a: TermId, b: TermId) -> TermId {
        self.bv_sle(b, a)
    }

    /// Renders a term as an s-expression (for debugging and error messages).
    pub fn display(&self, id: TermId) -> String {
        let data = self.term(id);
        match &data.op {
            Op::BoolConst(b) => b.to_string(),
            Op::BvConst { value, width } => {
                format!("#x{:0>width$x}", value, width = (*width as usize) / 4)
            }
            Op::Var { name, .. } => name.clone(),
            op => {
                let name = format!("{:?}", op).to_lowercase();
                let args: Vec<String> = data.args.iter().map(|&a| self.display(a)).collect();
                format!("({} {})", name, args.join(" "))
            }
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {})", w),
        }
    }
}

/// Masks a value to `width` bits.
pub fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Sign-extends a `width`-bit value to i64.
pub fn sign_extend(value: u64, width: u32) -> i64 {
    let value = mask(value, width);
    if width == 0 || width >= 64 {
        return value as i64;
    }
    let sign_bit = 1u64 << (width - 1);
    if value & sign_bit != 0 {
        (value | !((1u64 << width) - 1)) as i64
    } else {
        value as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_terms() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("x", 32);
        assert_eq!(x, y);
        let one_a = ctx.bv32(1);
        let one_b = ctx.bv_const(1, 32);
        assert_eq!(one_a, one_b);
        let s1 = ctx.bv_add(x, one_a);
        let s2 = ctx.bv_add(x, one_b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn constant_folding() {
        let mut ctx = Context::new();
        let a = ctx.bv32(6);
        let b = ctx.bv32(7);
        let p = ctx.bv_mul(a, b);
        assert_eq!(ctx.as_bv_const(p), Some(42));
        let neg = ctx.bv32(-1);
        assert_eq!(ctx.as_bv_const(neg), Some(0xffff_ffff));
        let lt = ctx.bv_slt(neg, a);
        assert_eq!(ctx.as_bool_const(lt), Some(true));
        let ult = ctx.bv_ult(neg, a);
        assert_eq!(ctx.as_bool_const(ult), Some(false));
    }

    #[test]
    fn neutral_elements() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let zero = ctx.bv32(0);
        let one = ctx.bv32(1);
        assert_eq!(ctx.bv_add(x, zero), x);
        assert_eq!(ctx.bv_mul(x, one), x);
        assert_eq!(ctx.bv_mul(x, zero), zero);
        assert_eq!(ctx.bv_sub(x, x), zero);
        let t = ctx.bool_const(true);
        let p = ctx.bool_var("p");
        assert_eq!(ctx.and(t, p), p);
        assert_eq!(ctx.or(t, p), t);
    }

    #[test]
    fn ite_and_eq_simplify() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let t = ctx.bool_const(true);
        assert_eq!(ctx.ite(t, x, y), x);
        let c = ctx.bool_var("c");
        assert_eq!(ctx.ite(c, x, x), x);
        let e = ctx.eq(x, x);
        assert_eq!(ctx.as_bool_const(e), Some(true));
    }

    #[test]
    fn signed_ops_match_c_semantics() {
        let mut ctx = Context::new();
        let a = ctx.bv32(-7);
        let b = ctx.bv32(2);
        let q = ctx.bv_sdiv(a, b);
        let r = ctx.bv_srem(a, b);
        assert_eq!(sign_extend(ctx.as_bv_const(q).unwrap(), 32), -3);
        assert_eq!(sign_extend(ctx.as_bv_const(r).unwrap(), 32), -1);
        let sh = ctx.bv32(-8);
        let one = ctx.bv32(1);
        let ashr = ctx.bv_ashr(sh, one);
        assert_eq!(sign_extend(ctx.as_bv_const(ashr).unwrap(), 32), -4);
        let lshr = ctx.bv_lshr(sh, one);
        assert_eq!(ctx.as_bv_const(lshr).unwrap(), ((-8i32 as u32) >> 1) as u64);
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        let mut ctx = Context::new();
        let a = ctx.bv32(5);
        let z = ctx.bv32(0);
        let q = ctx.bv_udiv(a, z);
        assert_eq!(ctx.as_bv_const(q), Some(0xffff_ffff));
        let r = ctx.bv_urem(a, z);
        assert_eq!(ctx.as_bv_const(r), Some(5));
    }

    #[test]
    fn sign_extend_helper() {
        assert_eq!(sign_extend(0xffff_ffff, 32), -1);
        assert_eq!(sign_extend(0x7fff_ffff, 32), i32::MAX as i64);
        assert_eq!(sign_extend(0b100, 3), -4);
        assert_eq!(mask(0x1_0000_0001, 32), 1);
    }

    #[test]
    fn display_renders_sexprs() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let one = ctx.bv32(1);
        let e = ctx.bv_add(x, one);
        let s = ctx.display(e);
        assert!(s.contains("bvadd"), "{}", s);
        assert!(s.contains('x'), "{}", s);
    }

    #[test]
    fn structural_hash_is_rename_invariant() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let xy = ctx.bv_add(x, y);
        let p = ctx.bv_var("p", 32);
        let q = ctx.bv_var("q", 32);
        let pq = ctx.bv_add(p, q);
        assert_eq!(structural_hash(&ctx, xy), structural_hash(&ctx, pq));

        // Larger DAG with sharing: (x*y) + (x*y) under two namings.
        let m1 = ctx.bv_mul(x, y);
        let s1 = ctx.bv_add(m1, m1);
        let m2 = ctx.bv_mul(p, q);
        let s2 = ctx.bv_add(m2, m2);
        assert_eq!(structural_hash(&ctx, s1), structural_hash(&ctx, s2));
    }

    #[test]
    fn structural_hash_distinguishes_sharing_patterns() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let xy = ctx.bv_add(x, y);
        let xx = ctx.bv_add(x, x);
        assert_ne!(structural_hash(&ctx, xy), structural_hash(&ctx, xx));
    }

    #[test]
    fn structural_hash_is_constant_sensitive() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let one = ctx.bv32(1);
        let two = ctx.bv32(2);
        let a = ctx.bv_add(x, one);
        let b = ctx.bv_add(x, two);
        assert_ne!(structural_hash(&ctx, a), structural_hash(&ctx, b));
    }

    #[test]
    fn structural_hash_is_operator_sensitive() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let add = ctx.bv_add(x, y);
        let sub = ctx.bv_sub(x, y);
        let mul = ctx.bv_mul(x, y);
        assert_ne!(structural_hash(&ctx, add), structural_hash(&ctx, sub));
        assert_ne!(structural_hash(&ctx, add), structural_hash(&ctx, mul));
    }

    #[test]
    fn structural_hash_is_width_sensitive() {
        let mut ctx = Context::new();
        let x32 = ctx.bv_var("x", 32);
        let y32 = ctx.bv_var("y", 32);
        let a32 = ctx.bv_add(x32, y32);
        let x8 = ctx.bv_var("p", 8);
        let y8 = ctx.bv_var("q", 8);
        let a8 = ctx.bv_add(x8, y8);
        assert_ne!(structural_hash(&ctx, a32), structural_hash(&ctx, a8));
    }

    #[test]
    fn structural_hash_is_context_independent() {
        // The same structure built in two different contexts (with different
        // term-id layouts) hashes identically — the memo key must survive
        // `Context::clear` and compare across recycled solvers.
        let mut ctx1 = Context::new();
        let pad = ctx1.bv_var("pad", 16);
        let _ = ctx1.bv_not(pad);
        let x1 = ctx1.bv_var("x", 32);
        let y1 = ctx1.bv_var("y", 32);
        let e1 = ctx1.bv_mul(x1, y1);
        let mut ctx2 = Context::new();
        let x2 = ctx2.bv_var("a", 32);
        let y2 = ctx2.bv_var("b", 32);
        let e2 = ctx2.bv_mul(x2, y2);
        assert_eq!(structural_hash(&ctx1, e1), structural_hash(&ctx2, e2));
    }

    #[test]
    fn vars_in_order_follows_first_occurrence() {
        let mut ctx = Context::new();
        let x = ctx.bv_var("x", 32);
        let y = ctx.bv_var("y", 32);
        let z = ctx.bv_var("z", 32);
        let yz = ctx.bv_add(y, z);
        let e = ctx.bv_mul(yz, x);
        let order = vars_in_order(&ctx, e);
        assert_eq!(order, vec![y, z, x]);
        // Repeats collapse to the first occurrence.
        let e2 = ctx.bv_add(e, y);
        assert_eq!(vars_in_order(&ctx, e2), vec![y, z, x]);
    }
}
