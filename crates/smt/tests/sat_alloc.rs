//! Pins the SAT core's warm-path allocation guarantee: once the clause
//! arena, watch lists, and search structures have been sized by
//! [`SatSolver::reserve_clauses`] / [`SatSolver::reserve_watch`] and warmed
//! by a few solve/reset cycles, further conflict-free solves must not touch
//! the heap at all. This is the steady state of the incremental per-scalar
//! pathway, where one solver answers hundreds of assumption queries.
//!
//! The test installs a counting global allocator; it must stay the only
//! test in this binary so no concurrent test pollutes the counter.

use lv_smt::{Lit, SatBudget, SatResult, SatSolver};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warm_conflict_free_solves_allocate_nothing() {
    let mut solver = SatSolver::new();

    // Variable-disjoint clauses: satisfiable, and no assignment of one
    // clause's variables can conflict with another's, so the search is
    // conflict-free — pure decide/propagate, the hot steady state.
    const GROUPS: usize = 24;
    let vars: Vec<_> = (0..GROUPS * 3).map(|_| solver.new_var()).collect();

    // Size the arena for the exact clause load before adding anything
    // (GROUPS binary + GROUPS ternary clauses), and give every watch list
    // room for the watches that propagation may migrate onto it.
    solver.reserve_clauses(GROUPS * 2, GROUPS * 5);
    for &var in &vars {
        solver.reserve_watch(Lit::pos(var), 2);
        solver.reserve_watch(Lit::neg(var), 2);
    }

    for group in vars.chunks(3) {
        let (a, b, c) = (group[0], group[1], group[2]);
        assert!(solver.add_clause(&[Lit::pos(a), Lit::pos(b)]));
        assert!(solver.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]));
    }
    let arena_before = solver.arena_bytes();
    let fingerprint = solver.cnf_fingerprint();
    let budget = SatBudget {
        max_conflicts: 1_000,
    };

    // Warm rounds: let the trail, heap, and watch lists reach their
    // steady-state capacities (watches migrate across lists on the first
    // few solves before settling into a cycle).
    for _ in 0..3 {
        assert_eq!(solver.solve(&budget), SatResult::Sat);
        solver.reset_to_root();
    }

    // The counter is global, so a test-harness thread scheduled mid-round
    // could pollute a measurement with a stray allocation. A real
    // regression allocates on every solve and can never produce a clean
    // round; retry a few times and require one allocation-free round.
    let mut cleanest = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..10 {
            assert_eq!(solver.solve(&budget), SatResult::Sat);
            solver.reset_to_root();
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }

    assert_eq!(
        cleanest, 0,
        "warm conflict-free solves performed heap allocations"
    );
    assert_eq!(
        solver.arena_bytes(),
        arena_before,
        "conflict-free search must not grow the clause arena"
    );
    assert_eq!(
        solver.cnf_fingerprint(),
        fingerprint,
        "solving must not change the stored instance"
    );
}
