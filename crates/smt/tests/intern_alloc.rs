//! Pins the interner's zero-allocation guarantee: constructing a term that
//! already exists (a cache hit) must not touch the heap. This is the hot
//! path of symbolic execution, which re-derives mostly-shared terms for
//! every unrolled iteration.
//!
//! The test installs a counting global allocator; it must stay the only
//! test in this binary so no concurrent test pollutes the counter.

use lv_smt::{Context, Sort};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn interner_hits_allocate_nothing() {
    let mut ctx = Context::new();
    // Build a representative mix once: variables, constants, boolean and
    // bitvector operators, ite/eq — everything the symbolic executor interns.
    let x = ctx.bv_var("x", 32);
    let y = ctx.bv_var("lane!7!value", 32);
    let one = ctx.bv32(1);
    let sum = ctx.bv_add(x, y);
    let prod = ctx.bv_mul(sum, one);
    let cmp = ctx.bv_slt(prod, x);
    let p = ctx.bool_var("p");
    let conj = ctx.and(cmp, p);
    let pick = ctx.ite(conj, sum, prod);
    let eq = ctx.eq(pick, x);
    let terms_before = ctx.len();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        assert_eq!(ctx.bv_var("x", 32), x);
        assert_eq!(ctx.bv_var("lane!7!value", 32), y);
        assert_eq!(ctx.bv32(1), one);
        assert_eq!(ctx.bv_add(x, y), sum);
        assert_eq!(ctx.bv_mul(sum, one), prod);
        assert_eq!(ctx.bv_slt(prod, x), cmp);
        assert_eq!(ctx.bool_var("p"), p);
        assert_eq!(ctx.and(cmp, p), conj);
        assert_eq!(ctx.ite(conj, sum, prod), pick);
        assert_eq!(ctx.eq(pick, x), eq);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(ctx.len(), terms_before, "hits must not grow the arena");
    assert_eq!(
        after - before,
        0,
        "interner hits performed heap allocations"
    );
    assert_eq!(ctx.sort(eq), Sort::Bool);
}
