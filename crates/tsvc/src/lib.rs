//! # lv-tsvc — the TSVC benchmark suite in mini-C
//!
//! The paper evaluates on the Test Suite for Vectorizing Compilers (TSVC),
//! restricted to 149 `for` loops over `int` arrays. This crate encodes the
//! integer variants of those kernels in the mini-C subset, together with the
//! category labels used in Figure 6 (control flow, dependence,
//! dependence + control flow, naively vectorizable, reduction,
//! reduction + control flow).
//!
//! Where the original TSVC kernel uses floating-point data or global arrays,
//! the kernel is re-expressed over `int *` parameters with the same loop
//! structure and dependence pattern — the properties the pipeline actually
//! exercises. The number of kernels encoded here is smaller than 149; the
//! experiment drivers in `lv-core` scale the reported counts accordingly and
//! EXPERIMENTS.md records the exact coverage.

#![warn(missing_docs)]

use lv_cir::ast::Function;
use lv_cir::parse_function;
use serde::{Deserialize, Serialize};

/// The kernel categories of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Loops dominated by if/goto control flow.
    ControlFlow,
    /// Loops with (possibly spurious) data dependences.
    Dependence,
    /// Both dependences and control flow.
    DependenceControlFlow,
    /// Straightforwardly vectorizable element-wise loops.
    NaivelyVectorizable,
    /// Reduction loops.
    Reduction,
    /// Reductions guarded by control flow.
    ReductionControlFlow,
}

impl Category {
    /// All categories in the order used by the figures.
    pub fn all() -> [Category; 6] {
        [
            Category::ControlFlow,
            Category::Dependence,
            Category::DependenceControlFlow,
            Category::NaivelyVectorizable,
            Category::Reduction,
            Category::ReductionControlFlow,
        ]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Category::ControlFlow => "Control Flow",
            Category::Dependence => "Dependence",
            Category::DependenceControlFlow => "Dependence+Control Flow",
            Category::NaivelyVectorizable => "Naively Vectorizable",
            Category::Reduction => "Reduction",
            Category::ReductionControlFlow => "Reduction+Control Flow",
        }
    }
}

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// TSVC test name (e.g. `s212`).
    pub name: &'static str,
    /// Figure 6 category.
    pub category: Category,
    /// mini-C source of the scalar kernel.
    pub source: &'static str,
}

impl Kernel {
    /// Parses the kernel source into an AST.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not parse; the test suite
    /// guarantees it does.
    pub fn function(&self) -> Function {
        parse_function(self.source).expect("embedded TSVC kernel parses")
    }
}

macro_rules! kernels {
    ($(($name:literal, $cat:ident, $src:literal)),* $(,)?) => {
        &[ $( Kernel { name: $name, category: Category::$cat, source: $src } ),* ]
    };
}

/// The embedded TSVC kernels.
pub const KERNELS: &[Kernel] = kernels![
    // ---- naively vectorizable -------------------------------------------------
    ("s000", NaivelyVectorizable, "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }"),
    ("s111", NaivelyVectorizable, "void s111(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { a[i] = b[i] * c[i]; } }"),
    ("s1111", NaivelyVectorizable, "void s1111(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * d[i] + c[i] * d[i]; } }"),
    ("s112", NaivelyVectorizable, "void s112(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { a[i] = b[i] + c[i] * 5; } }"),
    ("s121", NaivelyVectorizable, "void s121(int n, int *a, int *b) { for (int i = 0; i < n - 1; i++) { a[i] = b[i + 1] + b[i]; } }"),
    ("s127", NaivelyVectorizable, "void s127(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { a[i] = b[i] + c[i] * d[i]; } }"),
    ("s173", NaivelyVectorizable, "void s173(int n, int *a, int *b) { for (int i = 0; i < n - 8; i++) { a[i + 8] = a[i + 8] + b[i]; } }"),
    ("s243", NaivelyVectorizable, "void s243(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { a[i] = b[i] + c[i] * d[i]; b[i] = a[i] + d[i] * e[i]; } }"),
    ("s251", NaivelyVectorizable, "void s251(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { a[i] = (b[i] + c[i] * d[i]) * 2; } }"),
    ("s1251", NaivelyVectorizable, "void s1251(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { a[i] = (b[i] + c[i]) * (d[i] - e[i]); } }"),
    ("s452", NaivelyVectorizable, "void s452(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { a[i] = b[i] + c[i] * i; } }"),
    ("s431", NaivelyVectorizable, "void s431(int n, int k, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = a[i] + b[i] * k; } }"),
    ("vag", NaivelyVectorizable, "void vag(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * b[i]; } }"),
    ("vpv", NaivelyVectorizable, "void vpv(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] += b[i]; } }"),
    ("vtv", NaivelyVectorizable, "void vtv(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] *= b[i]; } }"),
    ("vpvtv", NaivelyVectorizable, "void vpvtv(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { a[i] += b[i] * c[i]; } }"),
    ("vpvts", NaivelyVectorizable, "void vpvts(int n, int s, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] += b[i] * s; } }"),
    ("s291", NaivelyVectorizable, "void s291(int n, int *a, int *b) { int im1; im1 = n - 1; for (int i = 0; i < n; i++) { a[i] = (b[i] + b[im1]) * 2; im1 = i; } }"),
    ("s292", NaivelyVectorizable, "void s292(int n, int *a, int *b) { int im1; int im2; im1 = n - 1; im2 = n - 2; for (int i = 0; i < n; i++) { a[i] = (b[i] + b[im1] + b[im2]) * 3; im2 = im1; im1 = i; } }"),
    ("s351", NaivelyVectorizable, "void s351(int n, int k, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = a[i] + k * b[i]; } }"),
    // ---- dependence ------------------------------------------------------------
    ("s212", Dependence, "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }"),
    ("s1213", Dependence, "void s1213(int n, int *a, int *b, int *c, int *d) { for (int i = 1; i < n - 1; i++) { a[i] = b[i - 1] + c[i]; b[i] = a[i + 1] * d[i]; } }"),
    ("s211", Dependence, "void s211(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 1; i < n - 1; i++) { a[i] = b[i - 1] + c[i] * d[i]; b[i] = b[i + 1] - e[i] * d[i]; } }"),
    ("s221", Dependence, "void s221(int n, int *a, int *b, int *c, int *d) { for (int i = 1; i < n; i++) { a[i] += c[i] * d[i]; b[i] = b[i - 1] + a[i] + d[i]; } }"),
    ("s222", Dependence, "void s222(int n, int *a, int *b, int *c) { for (int i = 1; i < n; i++) { a[i] += b[i] * c[i]; b[i] = b[i - 1] * b[i]; a[i] -= b[i] * c[i]; } }"),
    ("s231", Dependence, "void s231(int n, int *a, int *b) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] + b[i]; } }"),
    ("s116", Dependence, "void s116(int n, int *a) { for (int i = 0; i < n - 5; i += 5) { a[i] = a[i + 1] * a[i]; a[i + 1] = a[i + 2] * a[i + 1]; a[i + 2] = a[i + 3] * a[i + 2]; a[i + 3] = a[i + 4] * a[i + 3]; a[i + 4] = a[i + 5] * a[i + 4]; } }"),
    ("s1113", Dependence, "void s1113(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = a[n / 2] + b[i]; } }"),
    ("s241", Dependence, "void s241(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] = b[i] * c[i] * d[i]; b[i] = a[i] * a[i + 1] * d[i]; } }"),
    ("s242", Dependence, "void s242(int n, int s1, int s2, int *a, int *b, int *c, int *d) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] + s1 + s2 + b[i] + c[i] + d[i]; } }"),
    ("s252", Dependence, "void s252(int n, int *a, int *b, int *c) { int t; t = 0; for (int i = 0; i < n; i++) { int s = b[i] * c[i]; a[i] = s + t; t = s; } }"),
    ("s254", Dependence, "void s254(int n, int *a, int *b) { int x; x = b[n - 1]; for (int i = 0; i < n; i++) { a[i] = (b[i] + x) / 2; x = b[i]; } }"),
    ("s1244", Dependence, "void s1244(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] = b[i] + c[i] * c[i] + b[i] * b[i] + c[i]; d[i] = a[i] + a[i + 1]; } }"),
    ("s453", Dependence, "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }"),
    ("s311", Dependence, "void s311(int n, int *a, int *b) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] * b[i] + 1; } }"),
    // ---- control flow ------------------------------------------------------------
    ("s278", ControlFlow, "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }"),
    ("s271", ControlFlow, "void s271(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { if (b[i] > 0) { a[i] += b[i] * c[i]; } } }"),
    ("s2711", ControlFlow, "void s2711(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { if (b[i] != 0) { a[i] += b[i] * c[i]; } } }"),
    ("s2712", ControlFlow, "void s2712(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { if (a[i] > b[i]) { a[i] += b[i] * c[i]; } } }"),
    ("s272", ControlFlow, "void s272(int n, int t, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (e[i] >= t) { a[i] += c[i] * d[i]; b[i] += c[i] * c[i]; } } }"),
    ("s273", ControlFlow, "void s273(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { a[i] += d[i] * e[i]; if (a[i] < 0) { b[i] += d[i] * e[i]; } c[i] += a[i] * d[i]; } }"),
    ("s253", ControlFlow, "void s253(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { if (a[i] > b[i]) { int s = a[i] - b[i] * d[i]; c[i] += s; a[i] = s; } } }"),
    ("s441", ControlFlow, "void s441(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { if (d[i] < 0) { a[i] += b[i] * c[i]; } else { a[i] += c[i] * c[i]; } } }"),
    ("s443", ControlFlow, "void s443(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n; i++) { if (d[i] <= 0) { a[i] += b[i] * c[i]; } else { a[i] += b[i] * b[i]; } } }"),
    ("s161", ControlFlow, "void s161(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { if (b[i] < 0) { c[i + 1] = a[i] + d[i] * d[i]; } else { a[i] = c[i] + d[i] * d[i]; } } }"),
    ("vif", ControlFlow, "void vif(int n, int *a, int *b) { for (int i = 0; i < n; i++) { if (b[i] > 0) { a[i] = b[i]; } } }"),
    // ---- dependence + control flow ---------------------------------------------
    ("s274", DependenceControlFlow, "void s274(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { a[i] = c[i] + e[i] * d[i]; if (a[i] > 0) { b[i] = a[i] + b[i]; } else { a[i] = d[i] * e[i]; } } }"),
    ("s124", DependenceControlFlow, "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }"),
    ("s1161", DependenceControlFlow, "void s1161(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { if (c[i] < 0) { goto L20; } a[i] = c[i] + d[i] * d[i]; goto L10; L20: b[i] = a[i] + d[i] * d[i]; L10: a[i] = a[i]; } }"),
    ("s258", DependenceControlFlow, "void s258(int n, int *a, int *b, int *c, int *d, int *e) { int s; s = 0; for (int i = 0; i < n; i++) { if (a[i] > 0) { s = d[i] * d[i]; } b[i] = s * c[i] + d[i]; e[i] = (s + 1) * (s + 1); } }"),
    ("s277", DependenceControlFlow, "void s277(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n - 1; i++) { if (a[i] >= 0) { if (b[i] >= 0) { a[i] += c[i] * d[i]; } b[i + 1] = c[i] + d[i] * e[i]; } } }"),
    // ---- reduction ------------------------------------------------------------
    ("vsumr", Reduction, "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }"),
    ("vdotr", Reduction, "void vdotr(int n, int *a, int *b, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i] * b[i]; } out[0] = s; }"),
    ("s311r", Reduction, "void s311r(int n, int *a, int *out) { int sum = 0; for (int i = 0; i < n; i++) { sum += a[i]; } out[0] = sum; }"),
    ("s312", Reduction, "void s312(int n, int *a, int *out) { int prod = 1; for (int i = 0; i < n; i++) { prod *= a[i]; } out[0] = prod; }"),
    ("s313", Reduction, "void s313(int n, int *a, int *b, int *out) { int dot = 0; for (int i = 0; i < n; i++) { dot += a[i] * b[i]; } out[0] = dot; }"),
    ("s319", Reduction, "void s319(int n, int *a, int *b, int *c, int *d, int *e, int *out) { int sum = 0; for (int i = 0; i < n; i++) { a[i] = c[i] + d[i]; sum += a[i]; b[i] = c[i] + e[i]; sum += b[i]; } out[0] = sum; }"),
    ("s4113", Reduction, "void s4113(int n, int *a, int *b, int *c, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i] * b[i] + c[i]; } out[0] = s; }"),
    ("s352", Reduction, "void s352(int n, int *a, int *b, int *out) { int dot = 0; for (int i = 0; i < n - 4; i += 5) { dot = dot + a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2] + a[i + 3] * b[i + 3] + a[i + 4] * b[i + 4]; } out[0] = dot; }"),
    // ---- reduction + control flow ----------------------------------------------
    ("s314", ReductionControlFlow, "void s314(int n, int *a, int *out) { int x = a[0]; for (int i = 0; i < n; i++) { if (a[i] > x) { x = a[i]; } } out[0] = x; }"),
    ("s315", ReductionControlFlow, "void s315(int n, int *a, int *out) { int x = a[0]; int index = 0; for (int i = 0; i < n; i++) { if (a[i] > x) { x = a[i]; index = i; } } out[0] = x + index; }"),
    ("s316", ReductionControlFlow, "void s316(int n, int *a, int *out) { int x = a[0]; for (int i = 1; i < n; i++) { if (a[i] < x) { x = a[i]; } } out[0] = x; }"),
    ("s3111", ReductionControlFlow, "void s3111(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { if (a[i] > 0) { s += a[i]; } } out[0] = s; }"),
    ("s3113", ReductionControlFlow, "void s3113(int n, int *a, int *out) { int x = a[0]; for (int i = 0; i < n; i++) { if (a[i] > x) { x = a[i]; } if (-a[i] > x) { x = -a[i]; } } out[0] = x; }"),
    ("s443r", ReductionControlFlow, "void s443r(int n, int *a, int *b, int *out) { int s = 0; for (int i = 0; i < n; i++) { if (a[i] > 0) { s += a[i] * b[i]; } else { s += a[i] + b[i]; } } out[0] = s; }"),
];

/// Looks up a kernel by name.
pub fn kernel(name: &str) -> Option<&'static Kernel> {
    KERNELS.iter().find(|k| k.name == name)
}

/// All kernels of one category.
pub fn kernels_in(category: Category) -> Vec<&'static Kernel> {
    KERNELS.iter().filter(|k| k.category == category).collect()
}

/// Number of kernels in the embedded suite.
pub fn suite_size() -> usize {
    KERNELS.len()
}

/// The number of loops in the full TSVC integer suite used by the paper;
/// experiment drivers scale counts from [`suite_size`] up to this population
/// when reporting paper-comparable numbers.
pub const PAPER_SUITE_SIZE: usize = 149;

#[cfg(test)]
mod tests {
    use super::*;
    use lv_analysis::analyze_function;
    use lv_cir::type_check;
    use lv_interp::{run_function, ArgBindings, ExecConfig};

    #[test]
    fn all_kernels_parse_and_type_check() {
        for kernel in KERNELS {
            let func = kernel.function();
            assert_eq!(func.name, kernel.name, "function name matches kernel name");
            type_check(&func).unwrap_or_else(|e| panic!("{}: {}", kernel.name, e));
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<_> = KERNELS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }

    #[test]
    fn all_kernels_execute_on_random_inputs() {
        for kernel in KERNELS {
            let func = kernel.function();
            let mut args = ArgBindings::new();
            for p in &func.params {
                match &p.ty {
                    lv_cir::Type::Int => {
                        args.scalars.insert(p.name.clone(), 64);
                    }
                    lv_cir::Type::Ptr(_) => {
                        args.arrays
                            .insert(p.name.clone(), (1..=80).map(|x| x % 17 - 8).collect());
                    }
                    _ => {}
                }
            }
            run_function(&func, &args, &ExecConfig::default())
                .unwrap_or_else(|e| panic!("{} failed to execute: {}", kernel.name, e));
        }
    }

    #[test]
    fn every_category_is_populated() {
        for cat in Category::all() {
            assert!(
                !kernels_in(cat).is_empty(),
                "category {:?} has no kernels",
                cat
            );
        }
    }

    #[test]
    fn category_labels_are_consistent_with_analysis() {
        // Spot checks: the dependence analysis agrees with the labels.
        let s000 = kernel("s000").unwrap();
        assert!(analyze_function(&s000.function()).trivially_vectorizable());
        let s212 = kernel("s212").unwrap();
        assert!(analyze_function(&s212.function()).has_loop_carried());
        let s278 = kernel("s278").unwrap();
        assert!(analyze_function(&s278.function()).has_goto);
        let vsumr = kernel("vsumr").unwrap();
        assert!(analyze_function(&vsumr.function()).only_reductions());
    }

    #[test]
    fn lookup_helpers() {
        assert!(kernel("s212").is_some());
        assert!(kernel("does-not-exist").is_none());
        assert!(suite_size() >= 60);
        assert!(suite_size() <= PAPER_SUITE_SIZE);
    }
}
