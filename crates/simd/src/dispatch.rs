//! Name-based dispatch for the *pure* (register-only) AVX2 intrinsics.
//!
//! Memory intrinsics (`_mm256_loadu_si256`, `_mm256_storeu_si256`,
//! `_mm256_maskload_epi32`, `_mm256_maskstore_epi32`) need a memory model and
//! are handled by the interpreter and the symbolic executor directly; this
//! module evaluates everything else from argument values alone, so the
//! concrete and symbolic engines share a single source of truth for lane
//! semantics.

use crate::vector::{I32x8, LANES};
use std::error::Error;
use std::fmt;

/// An argument to a pure intrinsic: either a scalar or a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdArg {
    /// A scalar `int` argument (immediates, `set1` inputs).
    Scalar(i32),
    /// A `__m256i` argument.
    Vector(I32x8),
}

impl SimdArg {
    fn scalar(self) -> Result<i32, SimdError> {
        match self {
            SimdArg::Scalar(v) => Ok(v),
            SimdArg::Vector(_) => Err(SimdError::new("expected a scalar argument")),
        }
    }

    fn vector(self) -> Result<I32x8, SimdError> {
        match self {
            SimdArg::Vector(v) => Ok(v),
            SimdArg::Scalar(_) => Err(SimdError::new("expected a vector argument")),
        }
    }
}

impl From<i32> for SimdArg {
    fn from(v: i32) -> Self {
        SimdArg::Scalar(v)
    }
}

impl From<I32x8> for SimdArg {
    fn from(v: I32x8) -> Self {
        SimdArg::Vector(v)
    }
}

/// The result of a pure intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdValue {
    /// A scalar result (`_mm256_extract_epi32`, `_mm256_movemask_epi8`).
    Scalar(i32),
    /// A vector result.
    Vector(I32x8),
}

impl SimdValue {
    /// The vector payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a scalar; callers match on the intrinsic
    /// signature first.
    pub fn unwrap_vector(self) -> I32x8 {
        match self {
            SimdValue::Vector(v) => v,
            SimdValue::Scalar(s) => panic!("expected vector result, got scalar {}", s),
        }
    }

    /// The scalar payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a vector.
    pub fn unwrap_scalar(self) -> i32 {
        match self {
            SimdValue::Scalar(s) => s,
            SimdValue::Vector(v) => panic!("expected scalar result, got vector {}", v),
        }
    }
}

/// An error evaluating an intrinsic: unknown name, wrong arity or wrong
/// argument kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimdError {
    message: String,
}

impl SimdError {
    fn new(message: impl Into<String>) -> SimdError {
        SimdError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simd evaluation error: {}", self.message)
    }
}

impl Error for SimdError {}

/// Returns `true` if `name` is a memory intrinsic that the dispatcher does
/// *not* handle.
pub fn is_memory_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "_mm256_loadu_si256"
            | "_mm256_storeu_si256"
            | "_mm256_maskload_epi32"
            | "_mm256_maskstore_epi32"
    )
}

/// Evaluates a pure AVX2 intrinsic on concrete arguments.
///
/// # Errors
///
/// Returns [`SimdError`] for unknown intrinsics, memory intrinsics, wrong
/// argument counts or wrong argument kinds.
pub fn eval_intrinsic(name: &str, args: &[SimdArg]) -> Result<SimdValue, SimdError> {
    let require = |n: usize| -> Result<(), SimdError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SimdError::new(format!(
                "`{}` expects {} arguments, got {}",
                name,
                n,
                args.len()
            )))
        }
    };
    let vec2 = |f: fn(I32x8, I32x8) -> I32x8| -> Result<SimdValue, SimdError> {
        require(2)?;
        Ok(SimdValue::Vector(f(args[0].vector()?, args[1].vector()?)))
    };

    match name {
        "_mm256_setzero_si256" => {
            require(0)?;
            Ok(SimdValue::Vector(I32x8::zero()))
        }
        "_mm256_set1_epi32" => {
            require(1)?;
            Ok(SimdValue::Vector(I32x8::splat(args[0].scalar()?)))
        }
        "_mm256_setr_epi32" | "_mm256_set_epi32" => {
            require(LANES)?;
            let mut lanes = [0i32; LANES];
            for (slot, arg) in lanes.iter_mut().zip(args.iter()) {
                *slot = arg.scalar()?;
            }
            let v = if name == "_mm256_setr_epi32" {
                I32x8::from_lanes(lanes)
            } else {
                I32x8::from_lanes_reversed(lanes)
            };
            Ok(SimdValue::Vector(v))
        }
        "_mm256_add_epi32" => vec2(I32x8::add),
        "_mm256_sub_epi32" => vec2(I32x8::sub),
        "_mm256_mullo_epi32" => vec2(I32x8::mullo),
        "_mm256_and_si256" => vec2(I32x8::and),
        "_mm256_or_si256" => vec2(I32x8::or),
        "_mm256_xor_si256" => vec2(I32x8::xor),
        "_mm256_andnot_si256" => vec2(I32x8::andnot),
        "_mm256_max_epi32" => vec2(I32x8::max),
        "_mm256_min_epi32" => vec2(I32x8::min),
        "_mm256_cmpgt_epi32" => vec2(I32x8::cmpgt),
        "_mm256_cmpeq_epi32" => vec2(I32x8::cmpeq),
        "_mm256_hadd_epi32" => vec2(I32x8::hadd),
        "_mm256_permutevar8x32_epi32" => vec2(I32x8::permutevar),
        "_mm256_abs_epi32" => {
            require(1)?;
            Ok(SimdValue::Vector(args[0].vector()?.abs()))
        }
        "_mm256_blendv_epi8" => {
            require(3)?;
            Ok(SimdValue::Vector(
                args[0]
                    .vector()?
                    .blendv(args[1].vector()?, args[2].vector()?),
            ))
        }
        "_mm256_slli_epi32" => {
            require(2)?;
            Ok(SimdValue::Vector(args[0].vector()?.shl(args[1].scalar()?)))
        }
        "_mm256_srli_epi32" => {
            require(2)?;
            Ok(SimdValue::Vector(
                args[0].vector()?.shr_logical(args[1].scalar()?),
            ))
        }
        "_mm256_srai_epi32" => {
            require(2)?;
            Ok(SimdValue::Vector(
                args[0].vector()?.shr_arith(args[1].scalar()?),
            ))
        }
        "_mm256_shuffle_epi32" => {
            require(2)?;
            Ok(SimdValue::Vector(
                args[0].vector()?.shuffle(args[1].scalar()?),
            ))
        }
        "_mm256_permute2x128_si256" => {
            require(3)?;
            Ok(SimdValue::Vector(
                args[0]
                    .vector()?
                    .permute2x128(args[1].vector()?, args[2].scalar()?),
            ))
        }
        "_mm256_extract_epi32" => {
            require(2)?;
            Ok(SimdValue::Scalar(
                args[0].vector()?.extract(args[1].scalar()?),
            ))
        }
        "_mm256_insert_epi32" => {
            require(3)?;
            Ok(SimdValue::Vector(
                args[0]
                    .vector()?
                    .insert(args[1].scalar()?, args[2].scalar()?),
            ))
        }
        "_mm256_movemask_epi8" => {
            require(1)?;
            Ok(SimdValue::Scalar(args[0].vector()?.movemask_epi8()))
        }
        other if is_memory_intrinsic(other) => Err(SimdError::new(format!(
            "`{}` accesses memory and must be handled by the interpreter",
            other
        ))),
        other => Err(SimdError::new(format!("unknown intrinsic `{}`", other))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lanes: [i32; 8]) -> SimdArg {
        SimdArg::Vector(I32x8::from_lanes(lanes))
    }

    #[test]
    fn dispatch_add() {
        let r = eval_intrinsic(
            "_mm256_add_epi32",
            &[
                v([1, 2, 3, 4, 5, 6, 7, 8]),
                v([10, 20, 30, 40, 50, 60, 70, 80]),
            ],
        )
        .unwrap();
        assert_eq!(r.unwrap_vector().lanes(), [11, 22, 33, 44, 55, 66, 77, 88]);
    }

    #[test]
    fn dispatch_set1_and_setr() {
        let r = eval_intrinsic("_mm256_set1_epi32", &[SimdArg::Scalar(5)]).unwrap();
        assert_eq!(r.unwrap_vector(), I32x8::splat(5));
        let args: Vec<SimdArg> = (1..=8).map(SimdArg::Scalar).collect();
        let r = eval_intrinsic("_mm256_setr_epi32", &args).unwrap();
        assert_eq!(r.unwrap_vector().lanes(), [1, 2, 3, 4, 5, 6, 7, 8]);
        let r = eval_intrinsic("_mm256_set_epi32", &args).unwrap();
        assert_eq!(r.unwrap_vector().lanes(), [8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn dispatch_scalar_results() {
        let r = eval_intrinsic(
            "_mm256_extract_epi32",
            &[v([1, 2, 3, 4, 5, 6, 7, 8]), SimdArg::Scalar(2)],
        )
        .unwrap();
        assert_eq!(r.unwrap_scalar(), 3);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        assert!(eval_intrinsic("_mm256_add_epi32", &[v([0; 8])]).is_err());
    }

    #[test]
    fn wrong_kind_is_an_error() {
        assert!(eval_intrinsic(
            "_mm256_add_epi32",
            &[SimdArg::Scalar(1), SimdArg::Scalar(2)]
        )
        .is_err());
    }

    #[test]
    fn memory_intrinsics_are_rejected() {
        let err = eval_intrinsic("_mm256_loadu_si256", &[SimdArg::Scalar(0)]).unwrap_err();
        assert!(err.to_string().contains("memory"));
        assert!(is_memory_intrinsic("_mm256_storeu_si256"));
        assert!(!is_memory_intrinsic("_mm256_add_epi32"));
    }

    #[test]
    fn unknown_intrinsic_is_an_error() {
        assert!(eval_intrinsic("_mm256_nonexistent", &[]).is_err());
    }
}
