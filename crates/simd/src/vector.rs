//! The 256-bit integer vector value (`__m256i` holding eight `i32` lanes).
//!
//! The semantics follow the Intel intrinsics guide for the AVX2 integer
//! instructions used by the pipeline. All arithmetic wraps (two's
//! complement), exactly like the hardware.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of 32-bit lanes in a 256-bit vector.
pub const LANES: usize = 8;

/// A 256-bit vector of eight 32-bit signed integers (`__m256i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct I32x8(pub [i32; LANES]);

impl I32x8 {
    /// All lanes zero (`_mm256_setzero_si256`).
    pub fn zero() -> I32x8 {
        I32x8([0; LANES])
    }

    /// All lanes set to `v` (`_mm256_set1_epi32`).
    pub fn splat(v: i32) -> I32x8 {
        I32x8([v; LANES])
    }

    /// Lanes in memory order, lane 0 first (`_mm256_setr_epi32`).
    pub fn from_lanes(lanes: [i32; LANES]) -> I32x8 {
        I32x8(lanes)
    }

    /// Lanes in `_mm256_set_epi32` order (highest lane first).
    pub fn from_lanes_reversed(lanes: [i32; LANES]) -> I32x8 {
        let mut v = lanes;
        v.reverse();
        I32x8(v)
    }

    /// Loads eight lanes from a slice (`_mm256_loadu_si256`).
    ///
    /// # Panics
    ///
    /// Panics if the slice has fewer than [`LANES`] elements; bounds are the
    /// interpreter's responsibility.
    pub fn load(slice: &[i32]) -> I32x8 {
        let mut lanes = [0; LANES];
        lanes.copy_from_slice(&slice[..LANES]);
        I32x8(lanes)
    }

    /// Stores eight lanes into a slice (`_mm256_storeu_si256`).
    ///
    /// # Panics
    ///
    /// Panics if the slice has fewer than [`LANES`] elements.
    pub fn store(self, slice: &mut [i32]) {
        slice[..LANES].copy_from_slice(&self.0);
    }

    /// The lanes as an array, lane 0 first.
    pub fn lanes(self) -> [i32; LANES] {
        self.0
    }

    /// A single lane (`_mm256_extract_epi32`); the index is taken modulo 8,
    /// as the hardware only uses the low three bits of the immediate.
    pub fn extract(self, idx: i32) -> i32 {
        self.0[(idx as usize) % LANES]
    }

    /// Replaces a single lane (`_mm256_insert_epi32`).
    pub fn insert(self, value: i32, idx: i32) -> I32x8 {
        let mut out = self.0;
        out[(idx as usize) % LANES] = value;
        I32x8(out)
    }

    fn zip_with(self, other: I32x8, f: impl Fn(i32, i32) -> i32) -> I32x8 {
        let mut out = [0; LANES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(self.0[i], other.0[i]);
        }
        I32x8(out)
    }

    fn map(self, f: impl Fn(i32) -> i32) -> I32x8 {
        let mut out = [0; LANES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(self.0[i]);
        }
        I32x8(out)
    }

    /// Lane-wise wrapping addition (`_mm256_add_epi32`).
    #[allow(clippy::should_implement_trait)] // wrapping, unlike `Add`
    pub fn add(self, other: I32x8) -> I32x8 {
        self.zip_with(other, i32::wrapping_add)
    }

    /// Lane-wise wrapping subtraction (`_mm256_sub_epi32`).
    #[allow(clippy::should_implement_trait)] // wrapping, unlike `Sub`
    pub fn sub(self, other: I32x8) -> I32x8 {
        self.zip_with(other, i32::wrapping_sub)
    }

    /// Lane-wise low-32-bit product (`_mm256_mullo_epi32`).
    pub fn mullo(self, other: I32x8) -> I32x8 {
        self.zip_with(other, i32::wrapping_mul)
    }

    /// Lane-wise bitwise and (`_mm256_and_si256`).
    pub fn and(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| a & b)
    }

    /// Lane-wise bitwise or (`_mm256_or_si256`).
    pub fn or(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| a | b)
    }

    /// Lane-wise bitwise xor (`_mm256_xor_si256`).
    pub fn xor(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Lane-wise `(!a) & b` (`_mm256_andnot_si256`).
    pub fn andnot(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| !a & b)
    }

    /// Lane-wise signed maximum (`_mm256_max_epi32`).
    pub fn max(self, other: I32x8) -> I32x8 {
        self.zip_with(other, i32::max)
    }

    /// Lane-wise signed minimum (`_mm256_min_epi32`).
    pub fn min(self, other: I32x8) -> I32x8 {
        self.zip_with(other, i32::min)
    }

    /// Lane-wise absolute value (`_mm256_abs_epi32`); `i32::MIN` wraps to
    /// itself exactly like the hardware.
    pub fn abs(self) -> I32x8 {
        self.map(i32::wrapping_abs)
    }

    /// Lane-wise comparison `a > b`, producing all-ones or all-zeros lanes
    /// (`_mm256_cmpgt_epi32`).
    pub fn cmpgt(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| if a > b { -1 } else { 0 })
    }

    /// Lane-wise comparison `a == b` (`_mm256_cmpeq_epi32`).
    pub fn cmpeq(self, other: I32x8) -> I32x8 {
        self.zip_with(other, |a, b| if a == b { -1 } else { 0 })
    }

    /// Byte-wise blend (`_mm256_blendv_epi8`): for each byte, picks `other`
    /// (the second operand, `b` in the intrinsic) when the mask byte's most
    /// significant bit is set, else `self` (`a`).
    pub fn blendv(self, other: I32x8, mask: I32x8) -> I32x8 {
        let a = self.to_bytes();
        let b = other.to_bytes();
        let m = mask.to_bytes();
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = if m[i] & 0x80 != 0 { b[i] } else { a[i] };
        }
        I32x8::from_bytes(out)
    }

    /// Logical left shift of each lane by `count` bits (`_mm256_slli_epi32`).
    /// Counts of 32 or more produce zero, as on hardware.
    #[allow(clippy::should_implement_trait)] // saturates at 32, unlike `Shl`
    pub fn shl(self, count: i32) -> I32x8 {
        if !(0..32).contains(&count) {
            return I32x8::zero();
        }
        self.map(|a| ((a as u32) << count) as i32)
    }

    /// Logical right shift (`_mm256_srli_epi32`).
    pub fn shr_logical(self, count: i32) -> I32x8 {
        if !(0..32).contains(&count) {
            return I32x8::zero();
        }
        self.map(|a| ((a as u32) >> count) as i32)
    }

    /// Arithmetic right shift (`_mm256_srai_epi32`); counts of 32 or more
    /// shift by 31, replicating the sign bit.
    pub fn shr_arith(self, count: i32) -> I32x8 {
        let c = count.clamp(0, 31);
        self.map(|a| a >> c)
    }

    /// Horizontal pairwise add (`_mm256_hadd_epi32`). Operates independently
    /// on the two 128-bit halves, interleaving pairwise sums of `self` and
    /// `other` exactly like the hardware instruction.
    pub fn hadd(self, other: I32x8) -> I32x8 {
        let a = self.0;
        let b = other.0;
        I32x8([
            a[0].wrapping_add(a[1]),
            a[2].wrapping_add(a[3]),
            b[0].wrapping_add(b[1]),
            b[2].wrapping_add(b[3]),
            a[4].wrapping_add(a[5]),
            a[6].wrapping_add(a[7]),
            b[4].wrapping_add(b[5]),
            b[6].wrapping_add(b[7]),
        ])
    }

    /// In-lane shuffle by immediate (`_mm256_shuffle_epi32`): the same
    /// 4-element permutation is applied to both 128-bit halves.
    pub fn shuffle(self, imm: i32) -> I32x8 {
        let sel = |k: usize| ((imm >> (2 * k)) & 0b11) as usize;
        let mut out = [0; LANES];
        for half in 0..2 {
            let base = half * 4;
            for k in 0..4 {
                out[base + k] = self.0[base + sel(k)];
            }
        }
        I32x8(out)
    }

    /// 128-bit lane permute/blend (`_mm256_permute2x128_si256`).
    pub fn permute2x128(self, other: I32x8, imm: i32) -> I32x8 {
        let pick = |sel: i32| -> [i32; 4] {
            if sel & 0x8 != 0 {
                return [0; 4];
            }
            let source = match sel & 0b11 {
                0 => &self.0[0..4],
                1 => &self.0[4..8],
                2 => &other.0[0..4],
                _ => &other.0[4..8],
            };
            [source[0], source[1], source[2], source[3]]
        };
        let lo = pick(imm & 0xf);
        let hi = pick((imm >> 4) & 0xf);
        I32x8([lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]])
    }

    /// Full cross-lane permute (`_mm256_permutevar8x32_epi32`): lane `i` of
    /// the result is lane `idx[i] & 7` of `self`.
    pub fn permutevar(self, idx: I32x8) -> I32x8 {
        let mut out = [0; LANES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[(idx.0[i] as usize) & 7];
        }
        I32x8(out)
    }

    /// Byte-level move mask (`_mm256_movemask_epi8`): bit `i` of the result
    /// is the most significant bit of byte `i`.
    pub fn movemask_epi8(self) -> i32 {
        let bytes = self.to_bytes();
        let mut mask: u32 = 0;
        for (i, byte) in bytes.iter().enumerate() {
            if byte & 0x80 != 0 {
                mask |= 1 << i;
            }
        }
        mask as i32
    }

    /// Sum of all lanes with wrapping arithmetic; used by reduction code
    /// generation and by tests.
    pub fn horizontal_sum(self) -> i32 {
        self.0.iter().fold(0i32, |acc, &x| acc.wrapping_add(x))
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, lane) in self.0.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: [u8; 32]) -> I32x8 {
        let mut lanes = [0i32; LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * 4..i * 4 + 4]);
            *lane = i32::from_le_bytes(b);
        }
        I32x8(lanes)
    }
}

impl fmt::Display for I32x8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, lane) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", lane)?;
        }
        write!(f, ">")
    }
}

impl From<[i32; LANES]> for I32x8 {
    fn from(lanes: [i32; LANES]) -> Self {
        I32x8(lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> I32x8 {
        I32x8::from_lanes([1, 2, 3, 4, 5, 6, 7, 8])
    }

    #[test]
    fn splat_and_zero() {
        assert_eq!(I32x8::splat(3).lanes(), [3; 8]);
        assert_eq!(I32x8::zero().lanes(), [0; 8]);
    }

    #[test]
    fn set_order_is_reversed() {
        let r = I32x8::from_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        let s = I32x8::from_lanes_reversed([8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(r, s);
    }

    #[test]
    fn arithmetic_wraps() {
        let max = I32x8::splat(i32::MAX);
        assert_eq!(max.add(I32x8::splat(1)), I32x8::splat(i32::MIN));
        assert_eq!(
            I32x8::splat(i32::MIN).sub(I32x8::splat(1)),
            I32x8::splat(i32::MAX)
        );
        assert_eq!(
            I32x8::splat(65536).mullo(I32x8::splat(65536)),
            I32x8::splat(0)
        );
    }

    #[test]
    fn comparisons_produce_masks() {
        let a = seq();
        let b = I32x8::splat(4);
        assert_eq!(a.cmpgt(b).lanes(), [0, 0, 0, 0, -1, -1, -1, -1]);
        assert_eq!(a.cmpeq(b).lanes(), [0, 0, 0, -1, 0, 0, 0, 0]);
    }

    #[test]
    fn blendv_selects_by_mask_msb() {
        let a = I32x8::splat(10);
        let b = I32x8::splat(20);
        let mask = I32x8::from_lanes([0, -1, 0, -1, 0, -1, 0, -1]);
        assert_eq!(a.blendv(b, mask).lanes(), [10, 20, 10, 20, 10, 20, 10, 20]);
    }

    #[test]
    fn blendv_matches_ternary_for_cmp_masks() {
        let a = seq();
        let b = I32x8::splat(4);
        let mask = a.cmpgt(b);
        let blended = b.blendv(a, mask);
        for i in 0..LANES {
            let expected = if a.0[i] > b.0[i] { a.0[i] } else { b.0[i] };
            assert_eq!(blended.0[i], expected);
        }
    }

    #[test]
    fn shifts() {
        let v = I32x8::splat(-8);
        assert_eq!(v.shr_arith(1), I32x8::splat(-4));
        assert_eq!(v.shr_logical(1), I32x8::splat(((-8i32) as u32 >> 1) as i32));
        assert_eq!(I32x8::splat(3).shl(2), I32x8::splat(12));
        assert_eq!(I32x8::splat(3).shl(40), I32x8::zero());
        assert_eq!(I32x8::splat(-1).shr_arith(40), I32x8::splat(-1));
    }

    #[test]
    fn min_max_abs() {
        let a = I32x8::from_lanes([-3, 5, -7, 9, 0, 1, -1, 2]);
        let b = I32x8::zero();
        assert_eq!(a.max(b).lanes(), [0, 5, 0, 9, 0, 1, 0, 2]);
        assert_eq!(a.min(b).lanes(), [-3, 0, -7, 0, 0, 0, -1, 0]);
        assert_eq!(a.abs().lanes(), [3, 5, 7, 9, 0, 1, 1, 2]);
        assert_eq!(I32x8::splat(i32::MIN).abs(), I32x8::splat(i32::MIN));
    }

    #[test]
    fn hadd_matches_reference() {
        let a = seq();
        let b = I32x8::from_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        assert_eq!(a.hadd(b).lanes(), [3, 7, 30, 70, 11, 15, 110, 150]);
    }

    #[test]
    fn shuffle_identity_and_reverse() {
        let a = seq();
        // imm 0b11100100 = identity.
        assert_eq!(a.shuffle(0b11_10_01_00), a);
        // imm 0b00011011 reverses each 128-bit half.
        assert_eq!(a.shuffle(0b00_01_10_11).lanes(), [4, 3, 2, 1, 8, 7, 6, 5]);
    }

    #[test]
    fn permute2x128_swap_halves() {
        let a = seq();
        // 0x01 selects the high half of a into the low output half and 0x2? —
        // imm 0x21 picks a.hi then b.lo; with b == a this swaps the halves.
        assert_eq!(a.permute2x128(a, 0x21).lanes(), [5, 6, 7, 8, 1, 2, 3, 4]);
        // Bit 3 of each selector nibble zeroes the corresponding output half.
        assert_eq!(a.permute2x128(a, 0x80).lanes()[4..8], [0, 0, 0, 0]);
        assert_eq!(a.permute2x128(a, 0x08).lanes()[0..4], [0, 0, 0, 0]);
    }

    #[test]
    fn permutevar_rotates() {
        let a = seq();
        let idx = I32x8::from_lanes([1, 2, 3, 4, 5, 6, 7, 0]);
        assert_eq!(a.permutevar(idx).lanes(), [2, 3, 4, 5, 6, 7, 8, 1]);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let a = seq();
        assert_eq!(a.extract(3), 4);
        assert_eq!(a.extract(11), 4, "index is taken mod 8");
        assert_eq!(a.insert(99, 0).lanes()[0], 99);
    }

    #[test]
    fn load_store_roundtrip() {
        let data = [9, 8, 7, 6, 5, 4, 3, 2, 1];
        let v = I32x8::load(&data);
        assert_eq!(v.lanes(), [9, 8, 7, 6, 5, 4, 3, 2]);
        let mut out = [0; 9];
        v.store(&mut out);
        assert_eq!(&out[..8], &data[..8]);
        assert_eq!(out[8], 0);
    }

    #[test]
    fn movemask_and_horizontal_sum() {
        let mask = I32x8::from_lanes([-1, 0, -1, 0, 0, 0, 0, 0]);
        assert_eq!(mask.movemask_epi8(), 0x0000_0f0f);
        assert_eq!(seq().horizontal_sum(), 36);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(I32x8::splat(1).to_string(), "<1, 1, 1, 1, 1, 1, 1, 1>");
    }
}
