//! # lv-simd — AVX2 value model for the LLM-Vectorizer reproduction
//!
//! The paper's vectorized candidates use AVX2 compiler intrinsics over
//! `__m256i` values. This crate provides an executable model of those
//! values and operations:
//!
//! * [`I32x8`] — a 256-bit vector of eight `i32` lanes with methods matching
//!   the Intel intrinsics (wrapping arithmetic, byte-wise blends, in-lane and
//!   cross-lane shuffles);
//! * [`eval_intrinsic`] — name-based dispatch used by both the concrete
//!   interpreter (`lv-interp`) and the symbolic lane expansion in `lv-tv`.
//!
//! # Examples
//!
//! ```
//! use lv_simd::{eval_intrinsic, I32x8, SimdArg};
//!
//! let a = I32x8::from_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
//! let b = I32x8::splat(10);
//! let sum = eval_intrinsic("_mm256_add_epi32", &[a.into(), b.into()])?;
//! assert_eq!(sum.unwrap_vector().lanes(), [11, 12, 13, 14, 15, 16, 17, 18]);
//! # Ok::<(), lv_simd::SimdError>(())
//! ```

#![warn(missing_docs)]

mod dispatch;
mod vector;

pub use dispatch::{eval_intrinsic, is_memory_intrinsic, SimdArg, SimdError, SimdValue};
pub use vector::{I32x8, LANES};
